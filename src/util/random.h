// Deterministic random generation for tests, benches and examples.
//
// All randomness in the repository flows through Rng seeded explicitly, so
// every experiment and property test is reproducible bit-for-bit.

#ifndef TOKRA_UTIL_RANDOM_H_
#define TOKRA_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace tokra {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG (public-domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) {
    TOKRA_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                          std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v;
    do {
      v = Next();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// n distinct doubles, uniform in [lo, hi). Distinctness is required by the
  /// paper's standard assumption on scores.
  std::vector<double> DistinctDoubles(std::size_t n, double lo, double hi) {
    std::unordered_set<double> seen;
    std::vector<double> out;
    out.reserve(n);
    while (out.size() < n) {
      double d = UniformDouble(lo, hi);
      if (seen.insert(d).second) out.push_back(d);
    }
    return out;
  }

 private:
  std::uint64_t state_;
};

}  // namespace tokra

#endif  // TOKRA_UTIL_RANDOM_H_
