#include "sketch/select7.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace tokra::sketch {

// Correctness sketch (c3 = 8). For a value v let lo_i(v) = 2^(j-1) for the
// deepest level j of sketch i with pivot >= v (0 if none); the window
// invariant gives lo_i(v) <= rank_i(v) < 4*lo_i(v) (and rank_i(v) = 0 when
// lo_i(v) = 0, since the level-1 pivot is the set maximum). Summing,
// LO(v) <= rank(v) < 4*LO(v) in the union. We return the LARGEST pivot x
// with LO(x) >= k, so rank(x) >= k. Crossing one pivot at most doubles one
// set's contribution (+1 when it appears), so LO(x) <= 2*LO(x') + 1 <= 2k-1
// where x' is the next pivot above; hence rank(x) < 4(2k-1) < 8k. If no
// pivot reaches LO >= k, then LO at the smallest pivot — which is at least
// half the union size — is < k, so |union| < 2k and -infinity (rank =
// |union| in [k, 2k)) is a valid answer, matching the lemma's proviso that
// x may be -infinity.
Select7Result SelectFromSketches(
    std::span<const LogSketch* const> sketches, std::uint64_t k) {
  TOKRA_CHECK(k >= 1);
  struct Cand {
    double value;
    std::uint32_t set;
    std::uint32_t level;
  };
  std::vector<Cand> cands;
  for (std::uint32_t i = 0; i < sketches.size(); ++i) {
    const LogSketch& s = *sketches[i];
    for (std::uint32_t j = 1; j <= s.levels(); ++j) {
      cands.push_back(Cand{s.pivot(j).value, i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.value > b.value; });

  std::vector<std::uint64_t> lo(sketches.size(), 0);
  std::uint64_t total = 0;  // LO(v), maintained incrementally as v sweeps down
  for (const Cand& c : cands) {
    std::uint64_t contrib = std::uint64_t{1} << (c.level - 1);
    if (contrib > lo[c.set]) {
      total += contrib - lo[c.set];
      lo[c.set] = contrib;
    }
    if (total >= k) {
      return Select7Result{false, c.value, c.set, c.level};
    }
  }
  return Select7Result{true, 0, 0, 0};
}

}  // namespace tokra::sketch
