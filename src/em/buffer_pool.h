// LRU buffer pool: the simulated main memory of M words (M/B frames).

#ifndef TOKRA_EM_BUFFER_POOL_H_
#define TOKRA_EM_BUFFER_POOL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "em/block_device.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::em {

/// Observer invoked with the block ids of dirty frames immediately before
/// their write-back reaches the home device — once per write-back batch, so
/// an implementation can group-commit whatever guards those writes. This is
/// the pager's WAL seam: it appends undo pre-images of checkpoint-live
/// blocks (and, in fsync mode, makes them durable) before the home file is
/// mutated, which is what lets recovery roll a torn inter-checkpoint state
/// back to the exact last checkpoint. The observer must not re-enter the
/// pool; reading the home device directly is fine.
class WriteBarrier {
 public:
  virtual ~WriteBarrier() = default;
  virtual void BeforeHomeWrite(std::span<const BlockId> ids) = 0;
};

/// Logical-to-physical block translation, consulted at the pool<->device
/// boundary. This is the COW epoch seam (DESIGN.md §14): the pool caches,
/// pins, and evicts by *logical* id (what clients name), while the device
/// transfer uses the *physical* location the translator resolves. Identity
/// when no translator is installed — the pre-MVCC behaviour.
///
/// RedirectWrite is called once per write-back, after the write barrier and
/// immediately before the device transfer; it may move the block to a fresh
/// location (copy-on-write) and must return where this write-back lands.
/// TranslateRead resolves where a block's current contents live. Neither
/// may re-enter the pool.
class BlockTranslator {
 public:
  virtual ~BlockTranslator() = default;
  virtual BlockId TranslateRead(BlockId id) = 0;
  virtual BlockId RedirectWrite(BlockId id) = 0;
};

/// Fixed-capacity LRU pool of block frames with pin/unpin semantics.
///
/// A pin that misses reads the block from the device (one I/O); evicting a
/// dirty frame writes it back (one I/O). Pinned frames are never evicted —
/// exceeding the frame budget with pins is a programming error (the model
/// only guarantees M = Omega(B), and every algorithm in this library pins
/// O(1) blocks at a time).
///
/// Recency is an intrusive doubly-linked list threaded through the frames
/// (most recent at the head): promotion on a hit and victim selection are
/// O(1), instead of the former O(num_frames) tick scan per miss. Eviction
/// order is unchanged — least recently *pinned* first, pinned frames
/// skipped.
///
/// PinMany/Prefetch are the batched entry points: all misses of a call are
/// coalesced into one SubmitWrites (dirty victims) + one SubmitReads batch,
/// so a query that knows its next k/B blocks pays one device round trip,
/// not k/B sequential ones.
///
/// Borrowed-frame mode (devices with SupportsBorrowedReads, i.e. kMmap):
/// a read pin that misses borrows a pointer straight into the device
/// mapping instead of copying the block into the frame buffer — the frame
/// becomes pure bookkeeping (id, pins, LRU position) and the OS page cache
/// holds the bytes. ReadData serves reads from the borrowed pointer;
/// FrameData (the mutable accessor) upgrades the frame copy-on-write into
/// its owned buffer first, so the dirty/write-back contract is exactly the
/// copying pool's: a borrowed frame is never dirty, and eviction of one
/// writes nothing. Hit/miss/eviction logic is shared with the copying
/// path, so logical I/O counts stay backend-identical by construction.
class BufferPool {
 public:
  enum class PinMode {
    kRead,    ///< load current block contents from the device on a miss
    kCreate,  ///< zero-fill the frame instead of reading (fresh block)
  };

  BufferPool(BlockDevice* device, std::uint32_t num_frames)
      : device_(device),
        frames_(num_frames),
        borrow_(device->SupportsBorrowedReads()) {
    TOKRA_CHECK(num_frames >= 2);
    if (!borrow_) {
      // Copying pools allocate every frame up front, which also gives the
      // device stable buffers to pre-register (io_uring registered
      // buffers; a hint only, no-op on other backends).
      for (Frame& f : frames_) f.buf.resize(device_->block_words(), 0);
      std::vector<word_t*> bufs;
      bufs.reserve(num_frames);
      for (Frame& f : frames_) bufs.push_back(f.buf.data());
      device_->RegisterIoBuffers(bufs);
    }
    // Borrow-capable pools allocate frame buffers lazily (OwnedBuf): a
    // frame that only ever borrows stays allocation-free, so a read-only
    // snapshot pool really is pure bookkeeping.
    // Free-stack popped from the back: reversed order hands out frames
    // 0, 1, 2, ... exactly like the former first-invalid-index scan.
    free_.reserve(num_frames);
    for (std::uint32_t i = num_frames; i > 0; --i) free_.push_back(i - 1);
  }

  /// Pins the block, returning its frame index.
  std::uint32_t Pin(BlockId id, PinMode mode);

  /// Pins every block of `ids` for reading, coalescing all misses into one
  /// batched eviction write + one batched read (hits and misses count as in
  /// Pin). out->at(i) is the frame of ids[i]; duplicates pin once per
  /// occurrence. The caller's pin budget covers the whole span.
  void PinMany(std::span<const BlockId> ids, std::vector<std::uint32_t>* out);

  /// Loads any of `ids` not already cached into the pool as one batched
  /// read, without pinning: subsequent Pins of these blocks are hits. A
  /// hint — blocks that do not fit next to the current pins are skipped.
  /// Counts IoStats::prefetched (plus device reads), never pool misses.
  void Prefetch(std::span<const BlockId> ids);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(std::uint32_t frame, bool dirty);

  /// Read-only view of the frame's block: the borrowed mapping pointer when
  /// the frame is borrowed, else the owned buffer. The zero-copy read path.
  const word_t* ReadData(std::uint32_t frame) const {
    const Frame& f = frames_[frame];
    return f.ext != nullptr ? f.ext : f.buf.data();
  }

  /// Mutable access; upgrades a borrowed frame copy-on-write into its owned
  /// buffer first, so mutation and write-back never touch the mapping.
  word_t* FrameData(std::uint32_t frame) {
    Frame& f = frames_[frame];
    if (f.ext != nullptr) {
      f.buf.assign(f.ext, f.ext + device_->block_words());
      f.ext = nullptr;
    }
    return OwnedBuf(f);
  }

  BlockId FrameBlock(std::uint32_t frame) const { return frames_[frame].id; }
  bool FrameBorrowed(std::uint32_t frame) const {
    return frames_[frame].ext != nullptr;
  }

  /// Writes back all dirty frames (each one write I/O, one batch submission).
  /// Frames stay cached.
  void FlushAll();

  /// Flushes and empties the pool — used to measure cold-cache costs.
  void DropAll();

  /// Discards any cached copy of `id` without write-back (used on Free).
  void Invalidate(BlockId id);

  /// Installs (or clears, with nullptr) the pre-write-back observer. Not
  /// owned; must outlive the pool or be cleared first.
  void SetWriteBarrier(WriteBarrier* barrier) { barrier_ = barrier; }

  /// Installs (or clears) the logical-to-physical translator. Not owned;
  /// must outlive the pool or be cleared first. Installing one with frames
  /// already cached is fine — frames are keyed by logical id throughout.
  void SetTranslator(BlockTranslator* xlate) { xlate_ = xlate; }

  /// Attaches the eviction-stall sink: time a pin (or batch) spends
  /// writing back dirty victims — the page-replacement cost the requester
  /// is stalled on. Null (the default) disables timing; clean evictions
  /// are never timed (they free the frame instantly).
  void SetEvictionStallHistogram(obs::Histogram* h) { evict_stall_us_ = h; }

  const IoStats& stats() const { return stats_; }
  std::uint32_t num_frames() const {
    return static_cast<std::uint32_t>(frames_.size());
  }
  std::uint32_t block_words() const { return device_->block_words(); }

 private:
  static constexpr std::uint32_t kNoFrame = ~std::uint32_t{0};

  struct Frame {
    BlockId id = kNullBlock;
    bool valid = false;
    bool dirty = false;  // never set while ext != nullptr (borrowed frames
                         // are upgraded to owned before any mutation)
    std::uint32_t pins = 0;
    // Intrusive LRU list position (valid frames only; head = most recent).
    std::uint32_t lru_prev = kNoFrame;
    std::uint32_t lru_next = kNoFrame;
    // Borrowed read: the block's bytes live at `ext` inside the device
    // mapping and `buf` is untouched; nullptr means `buf` owns the bytes.
    const word_t* ext = nullptr;
    std::vector<word_t> buf;
  };

  // O(1) LRU list primitives.
  void LruPushFront(std::uint32_t f);
  void LruRemove(std::uint32_t f);
  void LruTouch(std::uint32_t f) {
    if (lru_head_ == f) return;
    LruRemove(f);
    LruPushFront(f);
  }

  /// Free frame, else the least-recent unpinned frame; kNoFrame when every
  /// frame is pinned.
  std::uint32_t TryFindVictim();
  std::uint32_t FindVictim() {
    std::uint32_t v = TryFindVictim();
    // Too many simultaneous pins for the frame budget.
    TOKRA_CHECK(v != kNoFrame && "pool exhausted");
    return v;
  }

  /// Evicts the (unpinned) victim if valid. With `write_batch` != nullptr a
  /// dirty victim's write-back is deferred into the batch (the frame buffer
  /// stays untouched until the batch is submitted); otherwise it is written
  /// immediately.
  void EvictFrame(std::uint32_t v, std::vector<IoRequest>* write_batch);

  /// The frame's owned buffer, allocated on first need (borrow-capable
  /// pools skip the up-front allocation; frames that only ever borrow
  /// never get one).
  word_t* OwnedBuf(Frame& f) {
    if (f.buf.empty()) f.buf.resize(device_->block_words(), 0);
    return f.buf.data();
  }

  /// Shared implementation of PinMany (pin=true) and Prefetch (pin=false).
  void BatchLoad(std::span<const BlockId> ids, bool pin,
                 std::vector<std::uint32_t>* out);

  BlockDevice* device_;
  WriteBarrier* barrier_ = nullptr;
  BlockTranslator* xlate_ = nullptr;  // COW epoch translation; null = identity
  obs::Histogram* evict_stall_us_ = nullptr;  // dirty write-back stall sink
  std::vector<Frame> frames_;
  const bool borrow_;  // device supports zero-copy borrowed reads
  std::unordered_map<BlockId, std::uint32_t> map_;
  std::vector<std::uint32_t> free_;  // invalid frames, popped from the back
  std::uint32_t lru_head_ = kNoFrame;
  std::uint32_t lru_tail_ = kNoFrame;
  IoStats stats_;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_BUFFER_POOL_H_
