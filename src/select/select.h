// Top-t selection from max-heap views.
//
// The paper invokes Frederickson's O(k)-comparison heap-selection algorithm
// [7]. In the EM model CPU is free, and any strategy that visits O(t) heap
// nodes achieves the same I/O bound; Frederickson only shaves the (free) CPU
// term. We provide a best-first strategy (O(t lg t) comparisons, visits
// exactly the t winners plus their frontier) and a naive full-extraction
// baseline for the E10 ablation. Strategies are pluggable so a faithful
// Frederickson can be added without touching callers. See DESIGN.md
// (substitution table).

#ifndef TOKRA_SELECT_SELECT_H_
#define TOKRA_SELECT_SELECT_H_

#include <cstdint>
#include <vector>

#include "select/heap_view.h"

namespace tokra::select {

/// CPU-side cost counters for the E10 ablation bench.
struct SelectStats {
  std::uint64_t nodes_visited = 0;  ///< heap nodes touched (drives I/O)
  std::uint64_t comparisons = 0;    ///< key comparisons (free in EM model)
};

enum class Strategy {
  kBestFirst,    ///< priority-queue expansion; visits t + frontier nodes
  kNaiveExtract  ///< expands the entire forest, then selects; baseline only
};

/// Returns the `t` largest-keyed nodes of the forest (any order). If the
/// forest has fewer than `t` nodes, returns all of them.
///
/// kBestFirst visits O(t + #roots) nodes; each visit performs O(1) view
/// calls, so the I/O cost is O(t + #roots) block accesses — the bound the
/// paper needs from Frederickson's algorithm.
std::vector<HeapNode> SelectTop(const HeapView& view, std::size_t t,
                                Strategy strategy = Strategy::kBestFirst,
                                SelectStats* stats = nullptr);

}  // namespace tokra::select

#endif  // TOKRA_SELECT_SELECT_H_
