// Unit + property tests for the external order-statistic B-tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "btree/ostree.h"
#include "em/pager.h"
#include "util/bits.h"
#include "util/random.h"

namespace tokra::btree {
namespace {

em::EmOptions SmallOpts(std::uint32_t block_words = 64) {
  return em::EmOptions{.block_words = block_words, .pool_frames = 8};
}

TEST(OsTreeTest, EmptyTree) {
  em::Pager pager(SmallOpts());
  OsTree t = OsTree::Create(&pager);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Contains(1.0));
  EXPECT_EQ(t.Max().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.SelectDesc(1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.CountGreaterEq(0.0), 0u);
}

TEST(OsTreeTest, SingleElement) {
  em::Pager pager(SmallOpts());
  OsTree t = OsTree::Create(&pager);
  ASSERT_TRUE(t.Insert(3.5, 7.0).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains(3.5));
  EXPECT_EQ(*t.FindAux(3.5), 7.0);
  EXPECT_EQ(t.RankDesc(3.5), 1u);
  EXPECT_EQ(t.SelectDesc(1)->key, 3.5);
  EXPECT_EQ(t.Max()->key, 3.5);
  EXPECT_EQ(t.Min()->key, 3.5);
}

TEST(OsTreeTest, DuplicateInsertRejected) {
  em::Pager pager(SmallOpts());
  OsTree t = OsTree::Create(&pager);
  ASSERT_TRUE(t.Insert(1.0, 0.0).ok());
  EXPECT_EQ(t.Insert(1.0, 2.0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
}

TEST(OsTreeTest, DeleteMissingRejected) {
  em::Pager pager(SmallOpts());
  OsTree t = OsTree::Create(&pager);
  EXPECT_EQ(t.Delete(4.0).code(), StatusCode::kNotFound);
}

TEST(OsTreeTest, NanKeyRejected) {
  em::Pager pager(SmallOpts());
  OsTree t = OsTree::Create(&pager);
  EXPECT_EQ(t.Insert(std::nan(""), 0.0).code(), StatusCode::kInvalidArgument);
}

// Reference implementation for property checks.
class Oracle {
 public:
  void Insert(double k, double a) { m_[k] = a; }
  void Delete(double k) { m_.erase(k); }
  std::uint64_t RankDesc(double k) const {
    std::uint64_t c = 0;
    for (const auto& [key, _] : m_)
      if (key >= k) ++c;
    return c;
  }
  std::uint64_t CountInRange(double lo, double hi) const {
    std::uint64_t c = 0;
    for (const auto& [key, _] : m_)
      if (key >= lo && key <= hi) ++c;
    return c;
  }
  double SelectDesc(std::uint64_t r) const {
    auto it = m_.rbegin();
    std::advance(it, r - 1);
    return it->first;
  }
  std::size_t size() const { return m_.size(); }
  const std::map<double, double>& map() const { return m_; }

 private:
  std::map<double, double> m_;
};

struct OsTreeParam {
  std::uint32_t block_words;
  int n;
};

class OsTreePropertyTest : public ::testing::TestWithParam<OsTreeParam> {};

TEST_P(OsTreePropertyTest, RandomInsertLookupDelete) {
  const auto [bw, n] = GetParam();
  em::Pager pager(SmallOpts(bw));
  OsTree t = OsTree::Create(&pager);
  Oracle oracle;
  Rng rng(1234 + n + bw);

  auto keys = rng.DistinctDoubles(n, -1000.0, 1000.0);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(keys[i], i * 1.0).ok());
    oracle.Insert(keys[i], i * 1.0);
  }
  EXPECT_EQ(t.size(), oracle.size());
  t.CheckInvariants();

  // Rank / select / find agree with the oracle on random probes.
  for (int probe = 0; probe < 200; ++probe) {
    double q = keys[rng.Uniform(keys.size())];
    EXPECT_EQ(t.RankDesc(q), oracle.RankDesc(q));
    EXPECT_TRUE(t.Contains(q));
    double off = rng.UniformDouble(-1100, 1100);
    EXPECT_EQ(t.RankDesc(off), oracle.RankDesc(off)) << off;
  }
  for (int probe = 0; probe < 100; ++probe) {
    std::uint64_t r = 1 + rng.Uniform(oracle.size());
    EXPECT_EQ(t.SelectDesc(r)->key, oracle.SelectDesc(r));
  }

  // Delete a random half, re-verify, then delete the rest.
  rng.Shuffle(&keys);
  for (std::size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(t.Delete(keys[i]).ok()) << keys[i];
    oracle.Delete(keys[i]);
  }
  EXPECT_EQ(t.size(), oracle.size());
  t.CheckInvariants();
  for (int probe = 0; probe < 100 && oracle.size() > 0; ++probe) {
    std::uint64_t r = 1 + rng.Uniform(oracle.size());
    EXPECT_EQ(t.SelectDesc(r)->key, oracle.SelectDesc(r));
  }
  for (std::size_t i = keys.size() / 2; i < keys.size(); ++i) {
    ASSERT_TRUE(t.Delete(keys[i]).ok());
  }
  EXPECT_EQ(t.size(), 0u);
  t.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OsTreePropertyTest,
    ::testing::Values(OsTreeParam{32, 50}, OsTreeParam{32, 500},
                      OsTreeParam{64, 2000}, OsTreeParam{128, 2000},
                      OsTreeParam{256, 5000}, OsTreeParam{1024, 5000}),
    [](const ::testing::TestParamInfo<OsTreeParam>& info) {
      return "B" + std::to_string(info.param.block_words) + "n" +
             std::to_string(info.param.n);
    });

TEST(OsTreeTest, ScanRangeMatchesOracle) {
  em::Pager pager(SmallOpts(64));
  OsTree t = OsTree::Create(&pager);
  Rng rng(77);
  auto keys = rng.DistinctDoubles(1500, 0.0, 100.0);
  for (double k : keys) ASSERT_TRUE(t.Insert(k, -k).ok());
  std::sort(keys.begin(), keys.end());
  for (int probe = 0; probe < 50; ++probe) {
    double lo = rng.UniformDouble(-5, 105);
    double hi = lo + rng.UniformDouble(0, 40);
    std::vector<Entry> got;
    t.ScanRange(lo, hi, &got);
    std::vector<double> want;
    for (double k : keys)
      if (k >= lo && k <= hi) want.push_back(k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].key, want[i]);
      EXPECT_EQ(got[i].aux, -want[i]);
    }
    EXPECT_EQ(t.CountInRange(lo, hi), want.size());
  }
}

TEST(OsTreeTest, SelectDescInRange) {
  em::Pager pager(SmallOpts(64));
  OsTree t = OsTree::Create(&pager);
  for (int i = 1; i <= 100; ++i) ASSERT_TRUE(t.Insert(i, 0).ok());
  // Keys 30..60; 3rd largest is 58.
  auto e = t.SelectDescInRange(30, 60, 3);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->key, 58);
  // Rank beyond the range size fails.
  EXPECT_EQ(t.SelectDescInRange(30, 32, 5).status().code(),
            StatusCode::kOutOfRange);
}

TEST(OsTreeTest, BulkLoadMatchesIncremental) {
  em::Pager pager(SmallOpts(64));
  Rng rng(4242);
  auto keys = rng.DistinctDoubles(3000, -50, 50);
  std::vector<Entry> sorted;
  for (double k : keys) sorted.push_back(Entry{k, 2 * k});
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  OsTree t = OsTree::BulkLoad(&pager, sorted);
  EXPECT_EQ(t.size(), sorted.size());
  t.CheckInvariants();
  for (int probe = 0; probe < 200; ++probe) {
    std::uint64_t r = 1 + rng.Uniform(sorted.size());
    EXPECT_EQ(t.SelectDesc(r)->key, sorted[sorted.size() - r].key);
  }
  // The bulk-loaded tree supports updates.
  ASSERT_TRUE(t.Insert(1000.0, 1.0).ok());
  ASSERT_TRUE(t.Delete(sorted[0].key).ok());
  t.CheckInvariants();
}

TEST(OsTreeTest, BulkLoadEmptyAndTiny) {
  em::Pager pager(SmallOpts(64));
  OsTree empty = OsTree::BulkLoad(&pager, {});
  EXPECT_EQ(empty.size(), 0u);
  empty.CheckInvariants();
  std::vector<Entry> one{{5.0, 6.0}};
  OsTree t1 = OsTree::BulkLoad(&pager, one);
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1.Max()->key, 5.0);
  t1.CheckInvariants();
}

TEST(OsTreeTest, DestroyAllReleasesEveryBlock) {
  em::Pager pager(SmallOpts(64));
  std::uint64_t base = pager.BlocksInUse();
  OsTree t = OsTree::Create(&pager);
  Rng rng(9);
  auto keys = rng.DistinctDoubles(2000, 0, 1);
  for (double k : keys) ASSERT_TRUE(t.Insert(k, 0).ok());
  EXPECT_GT(pager.BlocksInUse(), base);
  t.DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

TEST(OsTreeTest, QueryCostIsLogarithmicBaseB) {
  // lg_B n I/Os per cold lookup: with B=256 (fanout ~84, leaf cap ~126) and
  // n = 100k, the tree has 3 levels; a cold search reads <= 4 blocks.
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 8});
  OsTree t = OsTree::Create(&pager);
  Rng rng(31);
  auto keys = rng.DistinctDoubles(100000, 0, 1);
  std::vector<Entry> sorted;
  for (double k : keys) sorted.push_back(Entry{k, 0});
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  t = OsTree::BulkLoad(&pager, sorted);
  std::uint64_t worst = 0;
  for (int probe = 0; probe < 50; ++probe) {
    pager.DropCache();
    em::IoStats before = pager.stats();
    t.RankDesc(keys[rng.Uniform(keys.size())]);
    std::uint64_t ios = (pager.stats() - before).TotalIos();
    worst = std::max(worst, ios);
  }
  EXPECT_LE(worst, 4u);
}

TEST(OsTreeTest, SpaceIsLinear) {
  // Blocks in use is O(n/B): with 2-word entries and >= 3/4-full leaves the
  // data alone needs n/((B-3)/2 * 3/4) blocks; total must be within ~2x.
  em::Pager pager(em::EmOptions{.block_words = 128, .pool_frames = 8});
  Rng rng(3);
  const std::size_t n = 50000;
  auto keys = rng.DistinctDoubles(n, 0, 1);
  std::vector<Entry> sorted;
  for (double k : keys) sorted.push_back(Entry{k, 0});
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  OsTree t = OsTree::BulkLoad(&pager, sorted);
  t.CheckInvariants();
  double leaf_cap = (128 - 3) / 2;
  double min_blocks = n / leaf_cap;
  EXPECT_LE(pager.BlocksInUse(), 2.0 * min_blocks);
}

}  // namespace
}  // namespace tokra::btree
