// The Section 2 query algorithm: boundary paths (Q1), heap concatenation +
// selection over the covered subtrees (Q2), sibling/children augmentation
// (Q3), and a final top-k over the candidate union (Lemma 2: phi = 16 makes
// Q1 u Q2 u Q3 a superset of the true top-k).

#include <algorithm>
#include <unordered_set>

#include "pilot/pilot_pst.h"
#include "select/select.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::pilot {
namespace {

struct TRefHash {
  std::size_t operator()(const TRef& t) const {
    return std::hash<std::uint64_t>()(t.base * 1000003u + t.idx);
  }
};

using TRefSet = std::unordered_set<TRef, TRefHash>;

}  // namespace

/// Max-heap view over the big tree script-T restricted to the Pi subtrees:
/// node key = representative score of its pilot set; children = T-children
/// with non-empty pilots (an empty pilot implies an empty subtree, so the
/// pruning is exact). Every view call costs O(1) block reads through the
/// pager, which is what gives the O(lg n + k/B) selection cost.
class PilotHeapView : public select::HeapView {
 public:
  PilotHeapView(const PilotPst* pst, std::vector<TRef> roots)
      : pst_(pst) {
    for (const TRef& r : roots) {
      TNodeRec rec = pst_->LoadTNode(r);
      if (rec.pilot_count == 0) continue;
      registry_.push_back(r);
      root_nodes_.push_back(
          select::HeapNode{registry_.size() - 1, rec.rep()});
    }
  }

  void Roots(std::vector<select::HeapNode>* out) const override {
    for (const auto& n : root_nodes_) out->push_back(n);
  }

  void Children(select::NodeId id,
                std::vector<select::HeapNode>* out) const override {
    TRef t = registry_[id];
    TNodeRec rec = pst_->LoadTNode(t);
    std::vector<TRef> kids;
    if (rec.is_slab()) {
      TRef c = pst_->SlabChild(rec);
      if (c.valid()) kids.push_back(c);
    } else {
      kids.push_back(TRef{t.base, static_cast<TIndex>(rec.left)});
      kids.push_back(TRef{t.base, static_cast<TIndex>(rec.right)});
    }
    for (const TRef& c : kids) {
      TNodeRec crec = pst_->LoadTNode(c);
      if (crec.pilot_count == 0) continue;  // empty pilot => empty subtree
      registry_.push_back(c);
      out->push_back(select::HeapNode{registry_.size() - 1, crec.rep()});
    }
  }

  const TRef& Resolve(select::NodeId id) const { return registry_[id]; }

 private:
  const PilotPst* pst_;
  mutable std::vector<TRef> registry_;
  std::vector<select::HeapNode> root_nodes_;
};

StatusOr<std::vector<Point>> PilotPst::TopK(double x1, double x2,
                                            std::uint64_t k,
                                            QueryStats* stats) const {
  if (x1 > x2) return Status::InvalidArgument("x1 > x2");
  if (k == 0) return std::vector<Point>{};
  std::uint64_t n = size();
  if (n == 0) return std::vector<Point>{};

  // ---- boundary paths pi1, pi2; Q1 = their pilot points inside q ------
  std::vector<Point> cand;
  TRefSet visited;
  std::vector<std::pair<TRef, TNodeRec>> path_recs;

  auto descend = [&](double x) {
    em::BlockId cur = MetaGet(kMRoot);
    while (true) {
      em::PageRef h = pager_->Fetch(cur);
      if (h.Get(kHKind) == 1) return;  // base leaf: path ends
      TIndex v = static_cast<TIndex>(h.Get(kHIntRoot));
      h = em::PageRef();
      std::vector<TNodeRec> recs = LoadTNodes(cur);
      while (true) {
        TRef t{cur, v};
        if (visited.insert(t).second) {
          path_recs.emplace_back(t, recs[v]);
        }
        const TNodeRec& rec = recs[v];
        if (rec.is_slab()) {
          cur = rec.base_child;
          break;
        }
        const TNodeRec& left = recs[static_cast<TIndex>(rec.left)];
        v = (x < left.hi_x()) ? static_cast<TIndex>(rec.left)
                              : static_cast<TIndex>(rec.right);
      }
    }
  };
  descend(x1);
  descend(x2);

  for (const auto& [t, rec] : path_recs) {
    if (rec.pilot_count == 0) continue;
    std::vector<Point> pts = PilotRead(rec);
    for (const Point& p : pts) {
      if (p.x >= x1 && p.x <= x2) {
        cand.push_back(p);
        if (stats != nullptr) ++stats->q1_points;
      }
    }
  }

  // ---- Pi: off-path children whose slab is covered by q -----------------
  auto covered = [&](const TNodeRec& rec) {
    return rec.lo_x() >= x1 && rec.hi_x() <= x2;
  };
  std::vector<TRef> pi;
  for (const auto& [t, rec] : path_recs) {
    std::vector<TRef> kids;
    if (rec.is_slab()) {
      TRef c = SlabChild(rec);
      if (c.valid()) kids.push_back(c);
    } else {
      kids.push_back(TRef{t.base, static_cast<TIndex>(rec.left)});
      kids.push_back(TRef{t.base, static_cast<TIndex>(rec.right)});
    }
    for (const TRef& c : kids) {
      if (visited.count(c) > 0) continue;
      TNodeRec crec = LoadTNode(c);
      if (covered(crec)) pi.push_back(c);
    }
  }

  // ---- heap concatenation + selection of phi (lg n + k/B) reps ---------
  std::uint64_t phi = MetaGet(kMPhi);
  std::uint64_t t_sel = phi * (Lg(n) + CeilDiv(k, B()));
  PilotHeapView view(this, pi);
  select::SelectStats sel_stats;
  std::vector<select::HeapNode> top =
      select::SelectTop(view, t_sel, select::Strategy::kBestFirst,
                        &sel_stats);
  if (stats != nullptr) {
    stats->reps_selected = top.size();
    stats->heap_nodes_visited = sel_stats.nodes_visited;
    stats->comparisons = sel_stats.comparisons;
  }

  // ---- Q2: pilot sets of the selected nodes ----------------------------
  TRefSet sr;
  std::vector<std::pair<TRef, TNodeRec>> sr_recs;
  for (const select::HeapNode& nd : top) {
    TRef t = view.Resolve(nd.id);
    sr.insert(t);
  }
  TRefSet collected;  // pilot sets already emitted into the candidate pool
  auto emit = [&](const TRef& t, const TNodeRec& rec, std::uint64_t* counter) {
    if (!collected.insert(t).second) return;
    if (rec.pilot_count == 0) return;
    std::vector<Point> pts = PilotRead(rec);
    for (const Point& p : pts) {
      if (p.x >= x1 && p.x <= x2) {
        cand.push_back(p);
        if (counter != nullptr) ++(*counter);
      }
    }
  };
  for (const select::HeapNode& nd : top) {
    TRef t = view.Resolve(nd.id);
    sr_recs.emplace_back(t, LoadTNode(t));
  }
  // All selected pilot sets are known now: batch their blocks into one
  // device submission before any is read (the k/B term of the query).
  PrefetchPilots(sr_recs);
  for (const auto& [t, rec] : sr_recs) {
    emit(t, rec, stats != nullptr ? &stats->q2_points : nullptr);
  }

  // ---- Q3: uncollected siblings (covered by q) and children of SR ------
  auto maybe_emit_ref = [&](const TRef& t, bool require_cover) {
    if (sr.count(t) > 0 || visited.count(t) > 0) return;
    TNodeRec rec = LoadTNode(t);
    if (require_cover && !covered(rec)) return;
    emit(t, rec, stats != nullptr ? &stats->q3_points : nullptr);
  };
  for (const auto& [t, rec] : sr_recs) {
    // Sibling in script-T (if any): the other child of the T-parent.
    if (rec.parent != ~std::uint64_t{0}) {
      TNodeRec prec = LoadTNode(TRef{t.base, static_cast<TIndex>(rec.parent)});
      TIndex sib = (static_cast<TIndex>(prec.left) == t.idx)
                       ? static_cast<TIndex>(prec.right)
                       : static_cast<TIndex>(prec.left);
      maybe_emit_ref(TRef{t.base, sib}, /*require_cover=*/true);
    }
    // Children in script-T.
    if (rec.is_slab()) {
      TRef c = SlabChild(rec);
      if (c.valid()) maybe_emit_ref(c, /*require_cover=*/false);
    } else {
      maybe_emit_ref(TRef{t.base, static_cast<TIndex>(rec.left)},
                     /*require_cover=*/false);
      maybe_emit_ref(TRef{t.base, static_cast<TIndex>(rec.right)},
                     /*require_cover=*/false);
    }
  }

  // ---- final top-k over the candidate pool -----------------------------
  std::size_t take = std::min<std::size_t>(k, cand.size());
  std::nth_element(cand.begin(), cand.begin() + take, cand.end(),
                   ByScoreDesc{});
  cand.resize(take);
  std::sort(cand.begin(), cand.end(), ByScoreDesc{});
  return cand;
}

Status PilotPst::Report3Sided(double x1, double x2, double y,
                              std::vector<Point>* out) const {
  if (x1 > x2) return Status::InvalidArgument("x1 > x2");
  if (size() == 0) return Status::Ok();
  // Breadth-first waves instead of a DFS stack: every node a wave will
  // report from is known before any pilot set is read, so each level's
  // pilot blocks go to the device as one batch (the reported set — and
  // thus the I/O count — is identical; only the emission order changes,
  // and every caller selects/sorts afterwards).
  std::vector<std::pair<TRef, TNodeRec>> live;
  std::vector<TRef> wave{RootTRef()}, next;
  while (!wave.empty()) {
    live.clear();
    for (const TRef& t : wave) {
      TNodeRec rec = LoadTNode(t);
      if (rec.hi_x() <= x1 || rec.lo_x() > x2) continue;  // slab disjoint
      if (rec.pilot_count == 0) continue;  // empty pilot => empty subtree
      if (rec.pmax() < y) continue;  // whole subtree below the threshold
      live.emplace_back(t, rec);
    }
    PrefetchPilots(live);
    next.clear();
    for (const auto& [t, rec] : live) {
      std::vector<Point> pts = PilotRead(rec);
      for (const Point& p : pts) {
        if (p.x >= x1 && p.x <= x2 && p.score >= y) out->push_back(p);
      }
      if (rec.is_slab()) {
        TRef c = SlabChild(rec);
        if (c.valid()) next.push_back(c);
      } else {
        next.push_back(TRef{t.base, static_cast<TIndex>(rec.left)});
        next.push_back(TRef{t.base, static_cast<TIndex>(rec.right)});
      }
    }
    wave.swap(next);
  }
  return Status::Ok();
}

}  // namespace tokra::pilot
