// ShardFence: the per-shard pruning sketch of the engine's query router.
//
// A query fanned out over S shards pays the paper's O(lg n_i + k/B) bound
// once per overlapping shard even when most shards cannot contribute to the
// global top-k. The fence is a tiny, conservatively-maintained summary that
// lets the router prove "this shard cannot beat the merge frontier's current
// k-th score" (skip it) or "this key range holds no points of this shard at
// all" (skip it) without touching the shard's index:
//
//   * key-range min/max of the held points (outer bounds: insert tightens,
//     delete leaves them — still sound);
//   * a fixed-width max-weight fence array: the shard's key span at build
//     time is cut into `fence_slots` sub-ranges, each tracking an exact
//     point count and an upper bound on the max score of its residents
//     (insert raises it; delete keeps it — an upper bound until the next
//     rebuild tightens it);
//   * a blocked Bloom filter over keys for point-ish (x1 == x2) lookups —
//     one cache line per probe, no false negatives, deletes leave bits set.
//
// Everything is an over-approximation in the safe direction: the fence may
// fail to prune (stale max, clamped edge slots, Bloom false positive) but
// can never prune a shard that holds a top-k result — RangeBound() returns
// an upper bound on the best in-range score, and `maybe_nonempty == false`
// only when the slot counts prove the range empty. The slot mapping is a
// fixed monotone function of x, so insert/delete keep counts exact.
//
// The engine serializes a fence into its shard's pager blocks at checkpoint
// (root 4 of the shard superblock) and reconstructs it on Recover() /
// OpenSnapshot(); see DESIGN.md §11.

#ifndef TOKRA_SKETCH_SHARD_FENCE_H_
#define TOKRA_SKETCH_SHARD_FENCE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "em/options.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::sketch {

struct ShardFenceOptions {
  /// Max-weight sub-ranges per shard. More slots = tighter bounds, bigger
  /// serialized fence; 64 slots cost ~1KiB per shard.
  std::uint32_t fence_slots = 64;
  /// Bloom bits per key at build time (0 disables the filter). The filter
  /// size is fixed at build; later inserts keep adding bits, so it only
  /// loses precision, never correctness.
  std::uint32_t bloom_bits_per_key = 8;
};

/// Verdict of RangeBound: when `maybe_nonempty` is false the fence PROVES
/// the shard holds no point in the range; otherwise `best_score` is an upper
/// bound on the best score the shard could contribute there.
struct FenceBound {
  bool maybe_nonempty = true;
  double best_score = std::numeric_limits<double>::infinity();
};

class ShardFence {
 public:
  /// A fence with no slots: RangeBound claims nothing (never prunes).
  ShardFence() = default;

  /// Builds the fence over the shard's current points. The slot geometry is
  /// anchored to the points' key span and stays fixed until the next Build
  /// (later inserts outside the span clamp into the edge slots).
  static ShardFence Build(std::span<const Point> points,
                          const ShardFenceOptions& options);

  /// Maintains the fence for one accepted update. O(1); Insert keeps every
  /// bound exact-or-tight, Delete leaves score/key bounds loose but sound.
  void Insert(const Point& p);
  void Delete(const Point& p);

  std::uint64_t count() const { return count_; }

  /// Conservative verdict for the key range [x1, x2] (see FenceBound).
  FenceBound RangeBound(double x1, double x2) const;

  /// False only when NO held point has key x (point-query pruning). May
  /// return true for absent keys (Bloom false positive / deleted key).
  bool MightContain(double x) const;

  /// Serialization to raw words — the engine stores these in a pager block
  /// chain and records the head as a checkpoint root.
  std::vector<em::word_t> Serialize() const;
  static StatusOr<ShardFence> Deserialize(std::span<const em::word_t> words);

  /// Validates soundness against the live point set: exact count, every
  /// point inside the key bounds, RangeBound/MightContain never exclude a
  /// held point. Test/CheckInvariants helper; O(n * fence_slots) CPU.
  void CheckAgainst(std::span<const Point> points) const;

 private:
  struct Slot {
    std::uint64_t count = 0;
    double max_score = -std::numeric_limits<double>::infinity();
  };

  /// Monotone fixed mapping x -> slot (clamped at the anchored edges).
  std::size_t SlotFor(double x) const;

  void BloomAdd(double x);
  bool BloomTest(double x) const;

  std::uint64_t count_ = 0;
  // Outer key bounds of the held points (grow-only between rebuilds).
  double min_x_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  // Slot geometry, fixed at Build. Unanchored (built empty) maps every key
  // to slot 0 — loose but monotone, so counts stay exact.
  bool anchored_ = false;
  double lo_ = 0, hi_ = 0;
  std::vector<Slot> slots_;
  // Blocked Bloom filter: kBloomBlockWords-word blocks, kBloomProbes bits
  // set within one block per key. Empty vector = disabled.
  std::vector<std::uint64_t> bloom_;

  static constexpr std::uint32_t kBloomBlockWords = 8;  // 512-bit block
  static constexpr std::uint32_t kBloomProbes = 3;
};

}  // namespace tokra::sketch

#endif  // TOKRA_SKETCH_SHARD_FENCE_H_
