// Fault-injection torture harness for the durability stack.
//
// Methodology (the LevelDB/SQLite discipline): run a fixed, seeded workload
// once with an unarmed FaultInjector to count every I/O site, then replay
// the identical workload once per site with one fault armed at that exact
// operation index. After every injected failure the harness asserts the
// graceful-degradation contract end to end:
//
//   * no process abort, ever — injected faults surface as Status
//     (kIoError / kResourceExhausted), never as a CHECK;
//   * at most the one faulted shard leaves service; queries covering only
//     the other shards keep answering;
//   * Recover() in a fresh engine restores an oracle-consistent state with
//     ZERO acknowledged updates lost: every update the engine acknowledged
//     is present (inserts) or gone (deletes) after recovery, and every
//     surviving point is explained by the oracle. Updates that returned an
//     error have unknown commit state (the fault may have landed between
//     the durable append and its acknowledgement) and are allowed either
//     way — the standard at-least-once ambiguity on failure.
//
// The final line `TORTURE SUMMARY: fault_points=N aborts=0
// acknowledged_lost=0` is grepped by CI.

#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "em/fault_device.h"
#include "em/file_block_device.h"
#include "em/pager.h"
#include "em/wal.h"
#include "engine/sharded_engine.h"
#include "util/point.h"
#include "util/random.h"

namespace tokra {
namespace {

namespace fs = std::filesystem;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// A unique temp directory for one test; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tokra-fault-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Device-level unit tests: the injected-fault model itself.
// ---------------------------------------------------------------------------

em::EmOptions FileEm(const std::string& path, em::FaultInjector* fault) {
  em::EmOptions o;
  o.block_words = 16;
  o.pool_frames = 8;
  o.backend = em::Backend::kFile;
  o.path = path;
  o.fault = fault;
  return o;
}

std::vector<em::word_t> Pattern(em::word_t tag, std::size_t n) {
  std::vector<em::word_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = tag * 1000 + i;
  return v;
}

TEST(FaultDeviceTest, ReadFaultDeliversBytesAndLatchesStickyError) {
  TempDir dir("read");
  em::FaultInjector inj;
  auto dev = em::MakeBlockDevice(FileEm(dir.File("d.blk"), &inj),
                                 /*truncate_file=*/true);
  dev->EnsureCapacity(4);
  const auto a = Pattern(7, 16);
  dev->Write(2, a.data());
  inj.Arm(em::FaultInjector::Kind::kReadError, 0);
  std::vector<em::word_t> got(16, 0);
  dev->Read(2, got.data());
  EXPECT_EQ(got, a);  // true bytes delivered underneath the failure
  EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
  EXPECT_EQ(dev->io_errors(), 1u);
  EXPECT_EQ(dev->injected_faults(), 1u);
  EXPECT_EQ(inj.injected(em::FaultInjector::Kind::kReadError), 1u);
  // Sticky: the error does not clear, and later reads stay coherent.
  dev->Read(2, got.data());
  EXPECT_EQ(got, a);
  EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
}

TEST(FaultDeviceTest, PostFailureWritesStayCoherentButOffTheMedium) {
  TempDir dir("overlay");
  const std::string path = dir.File("d.blk");
  em::FaultInjector inj;
  const auto a = Pattern(1, 16), b = Pattern(2, 16);
  {
    auto dev = em::MakeBlockDevice(FileEm(path, &inj), /*truncate_file=*/true);
    dev->EnsureCapacity(4);
    dev->Write(2, a.data());
    inj.Arm(em::FaultInjector::Kind::kWriteError, 0);
    dev->Write(3, a.data());  // the armed fault: performed, then latched
    EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
    // Post-failure writes land in the overlay: the live process reads them
    // back coherently...
    dev->Write(2, b.data());
    std::vector<em::word_t> got(16, 0);
    dev->Read(2, got.data());
    EXPECT_EQ(got, b);
    // ...including writes beyond the frozen device size (a grown region the
    // medium never saw), which read back zero-filled once un-written.
    dev->EnsureCapacity(10);
    std::vector<em::word_t> beyond(16, 1);
    dev->Read(9, beyond.data());
    EXPECT_EQ(beyond, std::vector<em::word_t>(16, 0));
  }
  // ...but the medium was frozen at the failure point: a reopen sees the
  // pre-failure bytes, exactly what recovery must be able to trust.
  auto re = em::MakeBlockDevice(FileEm(path, nullptr), /*truncate_file=*/false);
  std::vector<em::word_t> got(16, 0);
  re->Read(2, got.data());
  EXPECT_EQ(got, a);
}

TEST(FaultDeviceTest, TornWritePersistsPrefixServesShadow) {
  TempDir dir("torn");
  const std::string path = dir.File("d.blk");
  em::FaultInjector inj;
  const auto old_bytes = Pattern(3, 16), new_bytes = Pattern(4, 16);
  {
    auto dev = em::MakeBlockDevice(FileEm(path, &inj), /*truncate_file=*/true);
    dev->EnsureCapacity(4);
    dev->Write(2, old_bytes.data());
    inj.Arm(em::FaultInjector::Kind::kTornWrite, 0, /*seed=*/5);
    dev->Write(2, new_bytes.data());
    EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
    // The live process keeps seeing the intended bytes (shadow copy)...
    std::vector<em::word_t> got(16, 0);
    dev->Read(2, got.data());
    EXPECT_EQ(got, new_bytes);
  }
  // ...while the medium holds a prefix of the new bytes over the old tail.
  auto re = em::MakeBlockDevice(FileEm(path, nullptr), /*truncate_file=*/false);
  std::vector<em::word_t> got(16, 0);
  re->Read(2, got.data());
  EXPECT_NE(got, new_bytes);
  EXPECT_NE(got, old_bytes);
  EXPECT_EQ(got[0], new_bytes[0]);    // some prefix of the new write
  EXPECT_EQ(got[15], old_bytes[15]);  // the old tail survives
}

TEST(FaultDeviceTest, SyncFaultIsFsyncgate) {
  TempDir dir("sync");
  em::FaultInjector inj;
  em::EmOptions o = FileEm(dir.File("d.blk"), &inj);
  o.durable_sync = true;
  auto dev = em::MakeBlockDevice(o, /*truncate_file=*/true);
  dev->EnsureCapacity(4);
  dev->Sync();
  EXPECT_EQ(dev->syncs(), 1u);
  inj.Arm(em::FaultInjector::Kind::kSyncError, 0);
  dev->Sync();  // barrier skipped; error latched
  EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
  EXPECT_EQ(dev->syncs(), 1u);
  // fsyncgate: after one failed barrier, no later Sync() ever acknowledges
  // again — a clean retry would falsely promise durability for writes the
  // failed barrier dropped.
  dev->Sync();
  dev->Sync();
  EXPECT_EQ(dev->syncs(), 1u);
  EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
}

TEST(FaultDeviceTest, GrowFaultIsResourceExhausted) {
  TempDir dir("grow");
  em::FaultInjector inj;
  auto dev = em::MakeBlockDevice(FileEm(dir.File("d.blk"), &inj),
                                 /*truncate_file=*/true);
  dev->EnsureCapacity(2);
  inj.Arm(em::FaultInjector::Kind::kGrowError, 0);
  dev->EnsureCapacity(8);
  EXPECT_EQ(dev->io_status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultDeviceTest, MissingFileOpensAsStickyFailedDevice) {
  TempDir dir("missing");
  em::EmOptions o = FileEm(dir.File("no-such-dir") + "/d.blk", nullptr);
  auto dev = em::MakeBlockDevice(o, /*truncate_file=*/false);
  ASSERT_NE(dev, nullptr);  // construction never aborts
  EXPECT_EQ(dev->io_status().code(), StatusCode::kIoError);
  EXPECT_EQ(dev->NumBlocks(), 0u);
  // Reads on the failed device are defined (zero-fill), not fatal.
  std::vector<em::word_t> got(16, 1);
  dev->Read(0, got.data());
  EXPECT_EQ(got, std::vector<em::word_t>(16, 0));
}

TEST(PagerFaultTest, OpenMissingFileReturnsNotFound) {
  TempDir dir("pager-missing");
  em::EmOptions o = FileEm(dir.File("d.blk"), nullptr);
  auto r = em::Pager::Open(o);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PagerFaultTest, SuperblockBitFlipFallsBackOrRefuses) {
  TempDir dir("pager-flip");
  const std::string path = dir.File("d.blk");
  {
    em::Pager pager(FileEm(path, nullptr));
    em::BlockId b = pager.Allocate();
    em::PageRef page = pager.Create(b);
    page.Set(0, 42);
    ASSERT_TRUE(pager.Checkpoint({&b, 1}).ok());
  }
  // The first checkpoint lives in slot 1; slot 0 was never valid. Flipping
  // a bit of slot 0's read changes nothing; flipping slot 1's read must be
  // caught by the checksum and refused as a Status — silent corruption on
  // the only valid superblock is detected, never trusted and never fatal.
  {
    em::FaultInjector inj;
    inj.Arm(em::FaultInjector::Kind::kBitFlip, 0, /*seed=*/123);
    auto r = em::Pager::Open(FileEm(path, &inj));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->roots().size(), 1u);
  }
  {
    em::FaultInjector inj;
    inj.Arm(em::FaultInjector::Kind::kBitFlip, 1, /*seed=*/123);
    auto r = em::Pager::Open(FileEm(path, &inj));
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

// ---------------------------------------------------------------------------
// The engine torture harness.
// ---------------------------------------------------------------------------

std::vector<Point> SeedPoints(std::size_t n) {
  // Deterministic, distinct x and scores (no RNG: the sweep replays the
  // byte-identical workload per fault point).
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Point{1000.0 + 13.0 * static_cast<double>(i),
                        1.0 + 0.001 * static_cast<double>(i)});
  }
  return pts;
}

engine::EngineOptions TortureOptions(const std::string& dir) {
  engine::EngineOptions opts;
  opts.num_shards = 3;
  opts.threads = 1;  // single worker: deterministic I/O-site ordering
  opts.telemetry.enabled = false;
  opts.durability = engine::Durability::kWal;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 8};
  opts.storage_dir = dir;
  return opts;
}

struct Oracle {
  std::map<double, double> committed;  ///< acknowledged state (x -> score)
  std::set<double> uncertain;  ///< x's whose last update's outcome is unknown
  std::set<double> deleted;    ///< acknowledged deletes
};

constexpr std::size_t kSeedN = 150;
constexpr std::size_t kWorkOps = 110;

/// The fixed workload: a mix of inserts (fresh keys), deletes (of seed
/// keys), queries, and one mid-stream checkpoint. Every update's outcome is
/// folded into the oracle; every status is asserted to be graceful.
void RunWorkload(engine::ShardedTopkEngine* eng,
                 const std::vector<Point>& seed, Oracle* oracle) {
  auto note_update = [oracle](double x, double score, bool insert, Status st) {
    ASSERT_TRUE(st.ok() || st.code() == StatusCode::kIoError ||
                st.code() == StatusCode::kResourceExhausted ||
                st.code() == StatusCode::kFailedPrecondition)
        << st.ToString();
    if (st.ok()) {
      if (insert) {
        oracle->committed.emplace(x, score);
      } else {
        oracle->committed.erase(x);
        oracle->deleted.insert(x);
      }
    } else {
      oracle->uncertain.insert(x);
    }
  };
  std::size_t deleted_idx = 0;
  for (std::size_t t = 0; t < kWorkOps; ++t) {
    if (t == kWorkOps / 2) {
      Status cp = eng->Checkpoint();  // error is fine; abort is not
      (void)cp;
    }
    if (t % 4 == 3) {
      const double a = 900.0 + 37.0 * static_cast<double>(t % 29);
      auto r = eng->TopK(a, a + 400.0, 16);
      if (!r.ok()) {
        EXPECT_TRUE(r.status().code() == StatusCode::kIoError ||
                    r.status().code() == StatusCode::kResourceExhausted)
            << r.status().ToString();
      }
    } else if (t % 7 == 5 && deleted_idx < seed.size()) {
      const Point& p = seed[deleted_idx];
      deleted_idx += 3;
      note_update(p.x, p.score, /*insert=*/false, eng->Delete(p));
    } else {
      const Point p{2.0e6 + 11.0 * static_cast<double>(t),
                    2.0 + 0.001 * static_cast<double>(t)};
      note_update(p.x, p.score, /*insert=*/true, eng->Insert(p));
    }
  }
}

/// One x per shard, chosen so a TopK(x, x, k) probes exactly that shard.
std::vector<double> ShardProbePoints(const std::vector<double>& lb) {
  std::vector<double> probes(lb.size());
  for (std::size_t i = 0; i < lb.size(); ++i) {
    if (i == 0) {
      probes[i] = lb[1] - 1.0;
    } else if (i + 1 < lb.size()) {
      probes[i] = (lb[i] + lb[i + 1]) / 2.0;
    } else {
      probes[i] = lb[i] + 1.0;
    }
  }
  return probes;
}

/// Runs the seeded workload against a fresh engine with `inj` armed (or
/// not), asserts post-fault availability of the healthy shards, recovers
/// into a clean engine, and verifies the oracle. Returns the number of
/// acknowledged updates lost (0 on a healthy implementation).
std::uint64_t TortureRun(const std::string& tag, em::FaultInjector* inj,
                         bool expect_fired) {
  TempDir dir(tag);
  engine::EngineOptions opts = TortureOptions(dir.path());
  opts.em.fault = inj;
  const auto seed = SeedPoints(kSeedN);
  Oracle oracle;
  for (const Point& p : seed) oracle.committed.emplace(p.x, p.score);

  {
    auto built = engine::ShardedTopkEngine::Build(seed, opts);
    if (!built.ok()) {
      // The fault landed inside Build/first-checkpoint: nothing was ever
      // acknowledged beyond the constructor's own contract; there is
      // nothing to recover. Graceful refusal is the assertion.
      EXPECT_TRUE(expect_fired);
      return 0;
    }
    auto& eng = *built;
    RunWorkload(eng.get(), seed, &oracle);

    // Availability: a single injected fault can degrade at most the one
    // shard whose device stack it hit; every other shard keeps answering.
    const std::vector<double> lb = eng->ShardLowerBounds();
    std::uint32_t healthy = 0;
    for (double x : ShardProbePoints(lb)) {
      if (eng->TopK(x, x, 4).ok()) ++healthy;
    }
    EXPECT_GE(healthy + 1, lb.size()) << "more than one shard degraded";
    eng->CheckInvariants();  // skips failed shards; must not abort
  }

  if (expect_fired) {
    EXPECT_EQ(inj->injected_total(), 1u);
  }

  // Recover in a clean configuration (no injector): the medium must hold a
  // consistent checkpoint + log regardless of where the fault landed.
  engine::EngineOptions clean = TortureOptions(dir.path());
  engine::RecoveryReport report;
  auto rec = engine::ShardedTopkEngine::Recover(clean, &report);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return oracle.committed.size();  // everything lost
  auto& eng = *rec;

  const std::uint64_t n = eng->size();
  auto all = eng->TopK(-kInf, kInf, n + 16);
  EXPECT_TRUE(all.ok()) << all.status().ToString();
  if (!all.ok()) return oracle.committed.size();
  std::map<double, double> recovered;
  for (const Point& p : *all) recovered.emplace(p.x, p.score);
  EXPECT_EQ(recovered.size(), n);

  std::uint64_t lost = 0;
  for (const auto& [x, score] : oracle.committed) {
    auto it = recovered.find(x);
    if (it == recovered.end() || it->second != score) ++lost;
  }
  for (double x : oracle.deleted) {
    if (recovered.count(x) != 0) ++lost;  // acknowledged delete resurrected
  }
  // Every recovered point must be explained: committed, or an uncertain op
  // the fault left in the at-least-once window.
  for (const auto& [x, score] : recovered) {
    auto it = oracle.committed.find(x);
    const bool explained = (it != oracle.committed.end() &&
                            it->second == score) ||
                           oracle.uncertain.count(x) != 0;
    EXPECT_TRUE(explained) << "unexplained recovered point x=" << x;
  }

  // The recovered engine is live: it serves and accepts updates.
  EXPECT_TRUE(eng->TopK(-kInf, kInf, 4).ok());
  EXPECT_TRUE(eng->Insert(Point{9.9e6, 99.0}).ok());
  eng->CheckInvariants();
  return lost;
}

/// Evenly spaced sample of `want` indices in [0, count).
std::vector<std::uint64_t> SampleIndices(std::uint64_t count,
                                         std::uint64_t want) {
  std::vector<std::uint64_t> idx;
  if (count == 0) return idx;
  if (count <= want) {
    for (std::uint64_t i = 0; i < count; ++i) idx.push_back(i);
    return idx;
  }
  for (std::uint64_t i = 0; i < want; ++i) {
    idx.push_back(i * count / want);
  }
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

TEST(FaultTortureTest, SweepEveryIoSite) {
  // Discovery pass: count the workload's I/O sites per category.
  em::FaultInjector discover;
  ASSERT_EQ(TortureRun("discover", &discover, /*expect_fired=*/false), 0u);
  const em::FaultInjector::OpCounts sites = discover.ops_seen();
  ASSERT_GT(sites.reads, 0u);
  ASSERT_GT(sites.writes, 0u);
  ASSERT_GT(sites.syncs, 0u);
  ASSERT_GT(sites.grows, 0u);

  struct Schedule {
    em::FaultInjector::Kind kind;
    const char* name;
    std::uint64_t count;
    std::uint64_t want;
  };
  const Schedule schedules[] = {
      {em::FaultInjector::Kind::kReadError, "read", sites.reads, 56},
      {em::FaultInjector::Kind::kWriteError, "write", sites.writes, 56},
      {em::FaultInjector::Kind::kTornWrite, "torn", sites.writes, 48},
      {em::FaultInjector::Kind::kSyncError, "sync", sites.syncs, 48},
      {em::FaultInjector::Kind::kGrowError, "grow", sites.grows, 48},
  };

  std::uint64_t fault_points = 0, acknowledged_lost = 0;
  for (const Schedule& sc : schedules) {
    const auto indices = SampleIndices(sc.count, sc.want);
    for (std::uint64_t at : indices) {
      em::FaultInjector inj;
      inj.Arm(sc.kind, at, /*seed=*/at * 2 + 1);
      ++fault_points;
      acknowledged_lost +=
          TortureRun(std::string(sc.name) + "-" + std::to_string(at), &inj,
                     /*expect_fired=*/true);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(fault_points, 200u);
  EXPECT_EQ(acknowledged_lost, 0u);
  // CI greps this line; reaching it at all proves aborts=0.
  std::printf("TORTURE SUMMARY: fault_points=%llu aborts=0 "
              "acknowledged_lost=%llu\n",
              static_cast<unsigned long long>(fault_points),
              static_cast<unsigned long long>(acknowledged_lost));
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// Targeted engine legs.
// ---------------------------------------------------------------------------

TEST(FaultTortureTest, FsyncgateUnderDurableSync) {
  // Under kWalFsyncEveryBatch every group commit is a real fsync; a failed
  // log barrier must un-acknowledge the group, flip the shard read-only,
  // and never be retried into a false acknowledgement.
  TempDir dir("fsyncgate");
  em::FaultInjector inj;
  engine::EngineOptions opts = TortureOptions(dir.path());
  opts.durability = engine::Durability::kWalFsyncEveryBatch;
  opts.em.fault = &inj;
  const auto seed = SeedPoints(40);
  auto built = engine::ShardedTopkEngine::Build(seed, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& eng = *built;

  ASSERT_TRUE(eng->Insert(Point{5e6, 50.0}).ok());
  // Arm the NEXT sync (the one committing the following insert's record).
  inj.Arm(em::FaultInjector::Kind::kSyncError, 0);
  const Point doomed{5e6 + 1, 51.0};
  Status st = eng->Insert(doomed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(inj.injected_total(), 1u);

  // The rolled-back point is re-insertable in principle but its shard is
  // read-only now: every further update there reports the sticky error.
  EXPECT_EQ(eng->Insert(doomed).code(), StatusCode::kIoError);
  EXPECT_EQ(eng->Delete(Point{5e6, 50.0}).code(), StatusCode::kIoError);

  // Destroy, recover: the acknowledged insert survives, the revoked one is
  // allowed either way (its record never reached a successful barrier —
  // with the barrier skipped it may still be in the page cache; both are
  // within the contract).
  built->reset();
  auto rec = engine::ShardedTopkEngine::Recover(TortureOptions(dir.path()));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto all = (*rec)->TopK(-kInf, kInf, 200);
  ASSERT_TRUE(all.ok());
  EXPECT_NE(std::find(all->begin(), all->end(), Point{5e6, 50.0}),
            all->end());
}

TEST(FaultTortureTest, EnospcGrowFaultFailsCleanlyAndRecovers) {
  TempDir dir("enospc-inject");
  em::FaultInjector inj;
  engine::EngineOptions opts = TortureOptions(dir.path());
  opts.em.fault = &inj;
  const auto seed = SeedPoints(60);
  auto built = engine::ShardedTopkEngine::Build(seed, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& eng = *built;

  // Arm the next device growth, then insert until some update trips it.
  inj.Arm(em::FaultInjector::Kind::kGrowError, 0);
  std::vector<Point> acked;
  Status failed = Status::Ok();
  for (std::size_t t = 0; t < 4000 && failed.ok(); ++t) {
    const Point p{3e6 + static_cast<double>(t), 300.0 + 0.001 * t};
    Status st = eng->Insert(p);
    if (st.ok()) {
      acked.push_back(p);
    } else {
      failed = st;
    }
  }
  ASSERT_FALSE(failed.ok()) << "grow fault never fired";
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);

  // Healthy shards keep serving.
  const std::vector<double> lb = eng->ShardLowerBounds();
  std::uint32_t healthy = 0;
  for (double x : ShardProbePoints(lb)) {
    if (eng->TopK(x, x, 4).ok()) ++healthy;
  }
  EXPECT_GE(healthy + 1, lb.size());

  built->reset();
  auto rec = engine::ShardedTopkEngine::Recover(TortureOptions(dir.path()));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto all = (*rec)->TopK(-kInf, kInf, seed.size() + acked.size() + 16);
  ASSERT_TRUE(all.ok());
  std::set<double> xs;
  for (const Point& p : *all) xs.insert(p.x);
  for (const Point& p : seed) EXPECT_EQ(xs.count(p.x), 1u);
  for (const Point& p : acked) EXPECT_EQ(xs.count(p.x), 1u);
  (*rec)->CheckInvariants();
}

TEST(FaultTortureTest, EnospcViaRlimitFsize) {
  // Real refused growth: cap the file size with RLIMIT_FSIZE so ftruncate
  // and pwrite genuinely fail with EFBIG. SIGXFSZ must be ignored or the
  // kernel kills the process instead of failing the syscall.
  TempDir dir("enospc-rlimit");
  engine::EngineOptions opts = TortureOptions(dir.path());
  const auto seed = SeedPoints(60);
  auto built = engine::ShardedTopkEngine::Build(seed, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& eng = *built;
  ASSERT_TRUE(eng->Checkpoint().ok());

  std::uintmax_t max_file = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    max_file = std::max(max_file, fs::file_size(entry.path()));
  }

  struct rlimit old_limit {};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit capped = old_limit;
  capped.rlim_cur = static_cast<rlim_t>(max_file + 8 * 1024);
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &capped), 0);

  std::vector<Point> acked;
  Status failed = Status::Ok();
  for (std::size_t t = 0; t < 20000 && failed.ok(); ++t) {
    const Point p{4e6 + static_cast<double>(t), 400.0 + 0.001 * t};
    Status st = eng->Insert(p);
    if (st.ok()) {
      acked.push_back(p);
    } else {
      failed = st;
    }
  }
  // Lift the cap before asserting: recovery needs headroom again.
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  ASSERT_FALSE(failed.ok()) << "file-size cap never tripped";
  EXPECT_TRUE(failed.code() == StatusCode::kResourceExhausted ||
              failed.code() == StatusCode::kIoError)
      << failed.ToString();

  // Healthy shards keep serving under the refused growth.
  const std::vector<double> lb = eng->ShardLowerBounds();
  std::uint32_t healthy = 0;
  for (double x : ShardProbePoints(lb)) {
    if (eng->TopK(x, x, 4).ok()) ++healthy;
  }
  EXPECT_GE(healthy + 1, lb.size());

  built->reset();
  auto rec = engine::ShardedTopkEngine::Recover(TortureOptions(dir.path()));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto all = (*rec)->TopK(-kInf, kInf, seed.size() + acked.size() + 16);
  ASSERT_TRUE(all.ok());
  std::set<double> xs;
  for (const Point& p : *all) xs.insert(p.x);
  for (const Point& p : seed) EXPECT_EQ(xs.count(p.x), 1u);
  for (const Point& p : acked) EXPECT_EQ(xs.count(p.x), 1u);
  (*rec)->CheckInvariants();
}

TEST(FaultTortureTest, FailedShardSurfacesInMetrics) {
  TempDir dir("metrics");
  em::FaultInjector inj;
  engine::EngineOptions opts = TortureOptions(dir.path());
  opts.telemetry.enabled = true;
  opts.em.fault = &inj;
  auto built = engine::ShardedTopkEngine::Build(SeedPoints(60), opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& eng = *built;

  std::string dump = eng->DumpMetrics();
  EXPECT_NE(dump.find("tokra_engine_failed_shards 0"), std::string::npos)
      << dump;

  inj.Arm(em::FaultInjector::Kind::kWriteError, 0);
  Status st = Status::Ok();
  for (std::size_t t = 0; t < 4000 && st.ok(); ++t) {
    st = eng->Insert(Point{6e6 + static_cast<double>(t), 600.0 + 0.001 * t});
  }
  ASSERT_FALSE(st.ok()) << "write fault never fired";

  dump = eng->DumpMetrics();
  EXPECT_NE(dump.find("tokra_engine_failed_shards 1"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("tokra_em_io_errors_total"), std::string::npos);
  EXPECT_NE(dump.find("tokra_em_injected_faults_total"), std::string::npos);
  const em::IoStats io = eng->AggregatedIoStats();
  EXPECT_GE(io.io_errors, 1u);
  EXPECT_GE(io.injected_faults, 1u);
}

}  // namespace
}  // namespace tokra
