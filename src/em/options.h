// Parameters of the simulated external-memory (EM) model.

#ifndef TOKRA_EM_OPTIONS_H_
#define TOKRA_EM_OPTIONS_H_

#include <cstdint>
#include <string>

#include "util/check.h"

namespace tokra::obs {
class Histogram;
}  // namespace tokra::obs

namespace tokra::em {

class FaultInjector;

/// One machine word of the EM model. 64 bits >= Omega(lg n) for any input this
/// library can hold, matching the paper's word-size assumption.
using word_t = std::uint64_t;

/// Block identifier on the simulated disk.
using BlockId = std::uint64_t;

/// Sentinel for "no block".
inline constexpr BlockId kNullBlock = ~BlockId{0};

/// Fixed words at the head of a pager superblock (mirrored as
/// Pager::kSuperHeaderWords).
inline constexpr std::uint32_t kSuperblockHeaderWords = 14;

/// Floor on EmOptions::block_words. A checkpoint needs the superblock
/// header plus one word per root, and every pager client in this library
/// records at least its meta block as root 0, so Validate() enforces
/// header + 1 — a validated configuration can always persist a bare
/// structure instead of discovering the mismatch at checkpoint time.
/// Clients recording more roots validate their own larger floor (see
/// engine::kShardCheckpointRoots).
inline constexpr std::uint32_t kMinBlockWords = kSuperblockHeaderWords + 1;

/// Storage backend behind a pager's block device.
enum class Backend {
  kMem,    ///< in-memory simulation (volatile; the original seed behaviour)
  kFile,   ///< pread/pwrite on a regular file (durable across restarts)
  kUring,  ///< file backend with io_uring batch submission (falls back to
           ///< kFile at runtime when the kernel lacks io_uring support)
  kMmap,   ///< file backend serving reads from a shared mapping: warm reads
           ///< borrow pointers into the OS page cache (zero-copy) instead of
           ///< copying into pool frames; writes stay on the pwrite path
};

/// Latency histograms the em layer records into when attached (all
/// optional; a null pointer disables that timer entirely — no clock
/// reads). The pointers must outlive every pager/pool/WAL built from the
/// carrying EmOptions; the engine owns them in its MetricsRegistry and
/// destroys telemetry after the shards.
struct EmMetrics {
  obs::Histogram* eviction_stall_us = nullptr;  ///< dirty-frame write-backs
  obs::Histogram* wal_append_us = nullptr;      ///< WriteAheadLog::Append
  obs::Histogram* wal_fsync_us = nullptr;       ///< real WAL fsync barriers
  obs::Histogram* checkpoint_us = nullptr;      ///< Pager::Checkpoint
};

/// Aggarwal-Vitter model parameters: a memory of `M` words and a disk of
/// blocks of `B` words. The model requires M = Omega(B); the pool keeps
/// M/B frames.
struct EmOptions {
  /// B: words per block. Must be >= kMinBlockWords (which also covers the
  /// >= 8 words every node header needs).
  std::uint32_t block_words = 256;

  /// M/B: number of block frames the buffer pool may hold in memory.
  std::uint32_t pool_frames = 16;

  /// Which device implementation backs the pager.
  Backend backend = Backend::kMem;

  /// Backing file for Backend::kFile (required for that backend).
  std::string path;

  /// File backend: make Sync() an fsync, so checkpoints survive power loss
  /// rather than just process exit. Costly; off by default.
  bool durable_sync = false;

  /// File-backed backends: open the device O_RDONLY and refuse every write
  /// (EnsureCapacity growth included). This is the snapshot-serving mode:
  /// a read-only device can be shared between many pagers mapping the same
  /// immutable file. Only meaningful with Pager::Open (a fresh pager must
  /// truncate, which a read-only open cannot).
  bool read_only = false;

  /// Epoch-based copy-on-write checkpoints (MVCC serving; DESIGN.md §14).
  /// On, the pager never overwrites a checkpoint-referenced block in place:
  /// the first post-checkpoint write-back of such a block is redirected to a
  /// freshly allocated block and the logical id remapped (the translation
  /// map is serialized with every superblock), so the newest completed
  /// checkpoint stays byte-intact on the device at all times. Readers pin a
  /// published epoch (Pager::PinEpoch) and read it lock-free through shared
  /// read-view devices; superseded blocks return to the free list only once
  /// every pin at or before their epoch has drained. Pre-image WAL records
  /// become unnecessary (and are skipped): COW is the undo log. A device
  /// checkpointed in COW mode reopens in COW mode regardless of this flag.
  bool cow_epochs = false;

  /// kUring: submission-queue depth of the ring — the number of block
  /// transfers a SubmitReads/SubmitWrites batch keeps in flight at once.
  /// Depth 1 degenerates to the synchronous path (one transfer at a time);
  /// other backends ignore it.
  std::uint32_t io_queue_depth = 32;

  /// When non-empty, the pager runs a write-ahead log on this file (a
  /// sibling of `path`, e.g. `shard-0.wal`): every home-file write between
  /// checkpoints is preceded by an undo pre-image append, Checkpoint()
  /// stamps the covered LSN into the superblock and truncates the log, and
  /// Open() rolls torn inter-checkpoint writes back to the exact checkpoint
  /// state before handing the pager out. Clients append their own logical
  /// redo records through Pager::wal(). Requires a file-backed `path`-style
  /// setup in spirit but works on any backend (the log itself is always a
  /// file).
  std::string wal_path = {};

  /// WAL segment rotation threshold, in log blocks: Truncate() rotates to a
  /// fresh segment file once the current one exceeds this many blocks
  /// (smaller logs are truncated logically and keep their file). Bounds the
  /// steady-state log size at max(one checkpoint interval, this).
  std::uint32_t wal_rotate_blocks = 1024;

  /// WAL power-loss durability: every Sync() of the log is a real fsync and
  /// pre-image appends are made durable before the home write they guard.
  /// Off, the log rides the OS page cache — it survives SIGKILL / process
  /// death (the kill-and-recover contract) but not power loss, mirroring
  /// `durable_sync` for the home file.
  bool wal_fsync = false;

  /// kUring: pre-register the buffer pool's frames
  /// (IORING_REGISTER_BUFFERS) and the device fd (IORING_REGISTER_FILES)
  /// with the ring, so batch transfers skip the per-op pin/lookup the
  /// kernel otherwise does. Runtime-probed: when the kernel refuses the
  /// registration (memlock limits, old kernel), the device silently keeps
  /// the unregistered submission path. Other backends ignore it.
  bool io_register_buffers = false;

  /// Optional telemetry sink (see EmMetrics). Copied by value through
  /// ShardEm-style specializations, so one engine-owned struct reaches
  /// every shard's pager, pool, and log.
  const EmMetrics* metrics = nullptr;

  /// Test hook: when set, MakeBlockDevice wraps the built backend in a
  /// FaultInjectingBlockDevice consulting this injector (see
  /// em/fault_device.h), and the pager's WAL wraps its log device the same
  /// way. Non-owning, like `metrics`; must outlive every device built from
  /// the carrying EmOptions. Null (the default) adds no wrapper and no
  /// overhead.
  FaultInjector* fault = nullptr;

  void Validate() const {
    TOKRA_CHECK(block_words >= kMinBlockWords);
    TOKRA_CHECK(pool_frames >= 4);
    TOKRA_CHECK(backend == Backend::kMem || !path.empty());
    // read_only + kMem is only reachable through Pager::OpenOn (an epoch
    // read view aliasing a live in-memory device); Pager::Open still
    // refuses kMem with a proper Status.
    TOKRA_CHECK(io_queue_depth >= 1);
    // A read-only pager must not own a log: scanning is fine (WalReader),
    // but attaching one implies undo writes on open and appends later.
    TOKRA_CHECK(wal_path.empty() || !read_only);
    TOKRA_CHECK(wal_rotate_blocks >= 1);
  }
};

}  // namespace tokra::em

#endif  // TOKRA_EM_OPTIONS_H_
