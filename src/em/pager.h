// Pager: block allocation plus pinned typed access on top of the buffer pool.
//
// Every persistent byte of every structure in this library lives in pager
// blocks; the pager is the single chokepoint through which all I/O flows.
//
// Persistence: blocks 0 and 1 of every device are reserved as two
// alternating superblock slots. Checkpoint() flushes the pool and
// serializes the allocator state (next block, free list, blocks-in-use)
// plus an application root directory into the next slot (epoch + checksum
// make the checkpoint write itself atomic); Open() restores the newest
// complete checkpoint, so a structure whose meta-block id is recorded as a
// root survives process restarts without rebuilding.
//
// Crash consistency between checkpoints: with EmOptions::wal_path set the
// pager attaches a write-ahead log and becomes its pre-image (undo) writer —
// before the first post-checkpoint overwrite of a checkpoint-live home
// block, the block's checkpoint-time content is appended to the log (the
// pool's WriteBarrier seam), so Open() can roll any torn inter-checkpoint
// state back to the exact last checkpoint before clients replay their own
// logical records from the same log (Pager::wal()). Checkpoint() stamps the
// covered LSN into the superblock and truncates the log behind it. Without
// a wal_path the contract stays checkpoint-granular, exactly as before.

#ifndef TOKRA_EM_PAGER_H_
#define TOKRA_EM_PAGER_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "em/wal.h"
#include "util/check.h"
#include "util/status.h"

namespace tokra::em {

class Pager;

/// RAII pin on one block. Move-only; unpins on destruction.
///
/// Mutation marks the frame dirty so it is written back on eviction/flush.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    return *this;
  }
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  BlockId id() const { return pool_->FrameBlock(frame_); }

  /// Read-only view of the block's words. On a borrowed frame this is the
  /// device mapping itself (zero-copy); reads must go through here or Get,
  /// never through mutable access, to stay copy-free.
  std::span<const word_t> words() const {
    return {pool_->ReadData(frame_), WordsPerBlock()};
  }

  /// Mutable view; marks the page dirty (upgrading a borrowed frame to an
  /// owned copy first, so write-back never aliases the mapping).
  std::span<word_t> mutable_words() {
    dirty_ = true;
    return {pool_->FrameData(frame_), WordsPerBlock()};
  }

  word_t Get(std::size_t i) const {
    TOKRA_DCHECK(i < WordsPerBlock());
    return pool_->ReadData(frame_)[i];
  }
  void Set(std::size_t i, word_t v) {
    TOKRA_DCHECK(i < WordsPerBlock());
    dirty_ = true;
    pool_->FrameData(frame_)[i] = v;
  }

  double GetDouble(std::size_t i) const { return std::bit_cast<double>(Get(i)); }
  void SetDouble(std::size_t i, double v) { Set(i, std::bit_cast<word_t>(v)); }

 private:
  friend class Pager;
  PageRef(BufferPool* pool, std::uint32_t frame) : pool_(pool), frame_(frame) {}

  std::size_t WordsPerBlock() const;

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
      pool_ = nullptr;
      dirty_ = false;
    }
  }

  BufferPool* pool_ = nullptr;
  std::uint32_t frame_ = 0;
  bool dirty_ = false;
};

/// RAII hold on one published checkpoint epoch (cow_epochs mode). While any
/// pin at or before epoch E is alive, no block that epoch E references is
/// reused or overwritten — the immutability window that makes lock-free
/// snapshot reads through ShareReadView()/OpenOn() safe. Move-only; thread-
/// safe to create and release from any thread.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  EpochPin(EpochPin&& other) noexcept
      : pager_(other.pager_), epoch_(other.epoch_) {
    other.pager_ = nullptr;
  }
  EpochPin& operator=(EpochPin&& other) noexcept {
    Release();
    pager_ = other.pager_;
    epoch_ = other.epoch_;
    other.pager_ = nullptr;
    return *this;
  }
  ~EpochPin() { Release(); }

  bool valid() const { return pager_ != nullptr; }
  std::uint64_t epoch() const { return epoch_; }
  void Release();

 private:
  friend class Pager;
  EpochPin(Pager* pager, std::uint64_t epoch)
      : pager_(pager), epoch_(epoch) {}

  Pager* pager_ = nullptr;
  std::uint64_t epoch_ = 0;
};

/// Block-accounting snapshot — the measurement seed for free-space
/// compaction: a long-lived file device never shrinks (freed blocks are
/// reused but the file keeps its high-water mark), and the gap between
/// `allocated_blocks` and `file_blocks` is exactly what a compactor could
/// reclaim by relocating live blocks downward and truncating.
struct SpaceStats {
  std::uint64_t allocated_blocks = 0;  ///< application blocks in use
  std::uint64_t free_blocks = 0;       ///< on the allocator free list
  std::uint64_t reserved_blocks = 0;   ///< superblock slots + spill region
  std::uint64_t file_blocks = 0;       ///< device high-water mark
  std::uint64_t retiring_blocks = 0;   ///< COW-superseded, awaiting epoch-pin
                                       ///< drain before rejoining the free
                                       ///< list (0 outside cow_epochs mode)
};

/// Owns the device + pool; allocates and frees blocks; hands out pins.
class Pager : private WriteBarrier, private BlockTranslator {
 public:
  /// A fresh pager on a fresh device (a file backend truncates any existing
  /// contents). Blocks 0 and 1 are reserved as superblock slots; allocation
  /// starts at block 2.
  explicit Pager(const EmOptions& options);

  /// Reopens a checkpointed device, restoring the allocator state and root
  /// directory recorded by the last Checkpoint(). File backend only (a
  /// fresh memory device has nothing to reopen). With options.read_only
  /// the device is opened O_RDONLY — the snapshot-serving mode: many
  /// pagers may open the same immutable file concurrently (kMmap shares
  /// their cached pages through the OS page cache), and Checkpoint() is
  /// refused.
  static StatusOr<std::unique_ptr<Pager>> Open(const EmOptions& options);

  /// B, in words.
  std::uint32_t B() const { return options_.block_words; }
  const EmOptions& options() const { return options_; }
  BlockDevice* device() { return device_.get(); }

  /// Sticky health of the whole durability stack: the first error recorded
  /// by the home device or the attached log. Non-OK means data written
  /// since the error may not be durable — callers must stop acknowledging
  /// (Checkpoint() refuses; the engine fails the shard).
  Status io_status() const {
    Status home = device_->io_status();
    if (!home.ok()) return home;
    return wal_ != nullptr ? wal_->io_status() : Status::Ok();
  }
  /// The two legs separately: a failed home device poisons reads and
  /// writes alike, while a failed log alone still serves reads correctly —
  /// the engine's failed-versus-read-only shard distinction. (Note the
  /// pager itself escalates a log failure to the home device the moment a
  /// write-back would need the lost pre-images; until then reads are safe.)
  Status home_io_status() const { return device_->io_status(); }
  Status wal_io_status() const {
    return wal_ != nullptr ? wal_->io_status() : Status::Ok();
  }

  /// Allocates a zeroed block. Allocation bookkeeping is O(1) metadata and
  /// costs no I/O; the block's first materialization to disk is charged when
  /// its frame is evicted or flushed.
  BlockId Allocate() {
    if (cow_) DrainRetired();
    BlockId id = AllocLocation();
    ++blocks_in_use_;
    return id;
  }

  /// Returns a block to the free list; any cached copy is discarded. In
  /// cow_epochs mode a block the last published checkpoint references is
  /// parked for epoch retirement instead of becoming reusable immediately.
  void Free(BlockId id) {
    TOKRA_CHECK(id != kNullBlock);
    pool_.Invalidate(id);
    if (cow_) {
      CowFree(id);
    } else {
      free_list_.push_back(id);
    }
    TOKRA_CHECK(blocks_in_use_ > 0);
    --blocks_in_use_;
  }

  /// Pins `id` for reading (and possibly writing). One read I/O on pool miss.
  PageRef Fetch(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kRead));
  }

  /// Pins `id` zero-filled without reading the device — for blocks whose
  /// entire contents the caller is about to overwrite (e.g. fresh nodes).
  PageRef Create(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kCreate));
  }

  /// Loads any uncached blocks of `ids` into the pool as one batched device
  /// submission, without pinning: the Fetches that follow become pool hits.
  /// A hint (blocks that do not fit next to the current pins are skipped),
  /// so it never changes results — only how transfers are scheduled. This is
  /// the pager's one batched entry point: hint-then-Fetch keeps the O(1)
  /// pin budget of every algorithm intact, where a pin-them-all API would
  /// tie correctness to the frame count.
  void Prefetch(std::span<const BlockId> ids) { pool_.Prefetch(ids); }

  /// Flushes the pool and serializes allocator state plus `roots` — an
  /// application-defined directory of up to B - kSuperHeaderWords words,
  /// typically structure meta-block ids — into the next superblock slot,
  /// with durability barriers on either side.
  ///
  /// Guarantee: Open() restores the state as of the last *completed*
  /// checkpoint. The checkpoint write sequence itself is atomic — a torn or
  /// interrupted superblock write is detected by checksum and falls back to
  /// the previous slot, and free-list spill blocks stay reserved until the
  /// next checkpoint supersedes them — so checkpoint-then-exit is always
  /// recoverable. Updates *between* checkpoints mutate blocks in place;
  /// without a WAL a crash after them leaves the device a mix of old and
  /// new block contents and recovery of the previous checkpoint is not
  /// guaranteed. With a WAL attached (EmOptions::wal_path) every such
  /// in-place write is preceded by an undo pre-image append, Open() rolls
  /// the mix back to the checkpoint, and this method additionally stamps
  /// the covered LSN into the superblock and truncates the log once the
  /// commit supersedes it.
  Status Checkpoint(std::span<const std::uint64_t> roots);

  /// Root directory recorded by the last Checkpoint() or restored by Open().
  const std::vector<std::uint64_t>& roots() const { return roots_; }

  /// The attached write-ahead log (EmOptions::wal_path), else nullptr.
  /// Clients append their logical redo records here (one per accepted
  /// update group + one Sync is the group commit); records with LSN greater
  /// than wal_checkpoint_lsn() are the replay tail.
  WriteAheadLog* wal() { return wal_.get(); }

  /// LSN covered by the restored/last-written checkpoint: every record at
  /// or below it is already reflected in the checkpointed state.
  std::uint64_t wal_checkpoint_lsn() const { return wal_ckpt_lsn_; }

  /// For WAL-less pagers only: makes the next Checkpoint() stamp `lsn` as
  /// the covered LSN. This is how a replacement file built on the side
  /// (the engine's rebalance) adopts the live shard's log without touching
  /// it: the side file is checkpointed with the log's current head, so
  /// once renamed into place every existing record is inert and the log
  /// simply continues. A pager with its own log always stamps that log's
  /// head instead.
  void OverrideWalCheckpointLsn(std::uint64_t lsn) {
    TOKRA_CHECK(wal_ == nullptr);
    wal_ckpt_lsn_ = lsn;
  }

  /// Space usage in blocks — the paper's space metric.
  std::uint64_t BlocksInUse() const { return blocks_in_use_; }

  /// Allocator/file accounting (free-space + high-water measurement seed).
  SpaceStats Space() const {
    SpaceStats s;
    s.allocated_blocks = blocks_in_use_;
    s.free_blocks = free_list_.size();
    s.reserved_blocks = kReservedBlocks + spill_count_ + spare_spill_count_;
    s.file_blocks = device_->NumBlocks();
    if (cow_) {
      std::lock_guard<std::mutex> lock(epochs_mu_);
      s.retiring_blocks = deferred_.size() + retire_ready_.size();
      for (const auto& [tag, batch] : retire_queue_) {
        s.retiring_blocks += batch.size();
      }
    }
    return s;
  }

  /// Combined device + pool + log counters.
  IoStats stats() const {
    IoStats s = pool_.stats();
    s.reads = device_->reads();
    s.writes = device_->writes();
    s.fsyncs = device_->syncs() + (wal_ != nullptr ? wal_->fsyncs() : 0);
    s.wal_appends = wal_ != nullptr ? wal_->appends() : 0;
    s.io_errors =
        device_->io_errors() + (wal_ != nullptr ? wal_->io_errors() : 0);
    s.injected_faults = device_->injected_faults() +
                        (wal_ != nullptr ? wal_->injected_faults() : 0);
    s.retired_blocks = retired_total_.load(std::memory_order_relaxed);
    return s;
  }

  void FlushAll() { pool_.FlushAll(); }

  /// Flushes and empties the pool: the next pins all miss (cold cache).
  void DropCache() { pool_.DropAll(); }

  // ---- Epoch-based MVCC serving (cow_epochs mode; DESIGN.md §14) ----

  /// Whether this pager runs copy-on-write checkpoints (the option, or a
  /// device whose last checkpoint was written in COW mode — such a device
  /// reopens COW regardless of the flag: its translation map is live).
  bool cow_epochs() const { return cow_; }

  /// Epoch of the newest completed (published) checkpoint. 0 until the
  /// first Checkpoint() commits. Thread-safe.
  std::uint64_t published_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Pins the newest published epoch: until the pin is released, every
  /// block that checkpoint references stays byte-intact on the device.
  /// Thread-safe; O(lg #distinct-pinned-epochs).
  EpochPin PinEpoch();

  /// Number of distinct epochs currently pinned. Thread-safe.
  std::uint64_t PinnedEpochs() const {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    return pins_.size();
  }

  /// Total superseded blocks retired to the free list over this pager's
  /// lifetime (epoch pins drained + newer epoch published). Thread-safe.
  std::uint64_t retired_blocks_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }

  /// Read-only alias of the home device for lock-free snapshot serving, or
  /// nullptr when the backend cannot share one. Pair with PinEpoch() and
  /// OpenOn(): the pin freezes the published checkpoint, the view reads it
  /// without touching this pager's pool or counters.
  std::unique_ptr<BlockDevice> ShareReadView() {
    return device_->TryShareReadView();
  }

  /// Opens a read-only pager directly on `device` — typically a
  /// ShareReadView() alias of a live COW pager, whose newest published
  /// checkpoint it loads. Forces read_only, never attaches a WAL, works on
  /// any backend (including the in-memory one: the view aliases live
  /// memory, there is no file to reopen). The caller must hold an EpochPin
  /// on the owning pager for this pager's whole lifetime, and the owning
  /// device must outlive it.
  static StatusOr<std::unique_ptr<Pager>> OpenOn(
      std::unique_ptr<BlockDevice> device, EmOptions options);

  /// Fixed words at the head of the superblock, preceding roots and the
  /// inline free list. EmOptions::Validate() enforces block_words >= this,
  /// so every validated configuration can checkpoint.
  static constexpr std::uint32_t kSuperHeaderWords = kSuperblockHeaderWords;

  /// Blocks reserved at the front of every device (the superblock slots).
  static constexpr BlockId kReservedBlocks = 2;

  ~Pager();

 private:
  friend class EpochPin;

  Pager(const EmOptions& options, std::unique_ptr<BlockDevice> device);

  /// Restores allocator state + roots from the superblock. Non-OK on a
  /// device that was never checkpointed or disagrees with `options_`.
  Status LoadSuperblock();

  // ---- COW epoch machinery (cow_ only; see DESIGN.md §14) ----
  //
  // One id space serves two roles: the *name* a client holds (stable across
  // checkpoints) and the *location* on the device. map_ carries every name
  // whose current location differs from itself; absence means identity.
  // The free list only ever holds ids free in BOTH roles, so AllocLocation
  // can hand one out for either purpose.

  /// BlockTranslator: where a block's current contents live.
  BlockId TranslateRead(BlockId id) override {
    auto it = map_.find(id);
    return it != map_.end() ? it->second : id;
  }
  /// BlockTranslator: where this write-back lands. In place when the home
  /// location was allocated this interval (no published checkpoint can
  /// reference it); otherwise redirected to a fresh location, the old one
  /// parked for retirement at the next publish.
  BlockId RedirectWrite(BlockId id) override;

  /// Pops a location from the free list (else the high-water mark),
  /// marking it interval-fresh in COW mode. No blocks_in_use_ accounting —
  /// that counts client-named blocks only, which the Allocate() wrapper
  /// tracks; redirect targets are locations, not names.
  BlockId AllocLocation() {
    BlockId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = next_block_++;
      device_->EnsureCapacity(next_block_);
    }
    if (cow_) interval_fresh_.insert(id);
    return id;
  }

  void CowFree(BlockId id);
  /// Location `loc` is no longer referenced by the live state: free it
  /// immediately if interval-fresh, else park it for epoch retirement.
  void ReleaseLocation(BlockId loc);

  void ReleaseEpochPin(std::uint64_t epoch);
  /// Moves every retire-queue batch whose epoch no pin can still observe
  /// into retire_ready_. Caller holds epochs_mu_.
  void MaybeRetireLocked();
  /// Writer-thread: folds retire_ready_ back into the allocator — an id
  /// whose name is still client-held (a map_ key) becomes an orphan
  /// (location free, name reserved until the client frees it); the rest
  /// rejoin the free list.
  void DrainRetired();

  /// WriteBarrier: appends undo pre-images of checkpoint-live blocks about
  /// to be overwritten in place (first overwrite per interval only), then
  /// makes them durable when the log is in fsync mode — the write-ahead
  /// rule that keeps the last checkpoint recoverable mid-interval.
  void BeforeHomeWrite(std::span<const BlockId> ids) override;

  /// Opens the log (torn tail dropped), then rolls the device back to the
  /// stamped checkpoint by applying pre-image records newest-first.
  Status AttachWalAndUndo();

  /// Snapshots which blocks the just-committed checkpoint considers live,
  /// resetting the once-per-interval pre-image dedup.
  void CaptureCheckpointLiveSet();

  EmOptions options_;
  std::unique_ptr<BlockDevice> device_;
  BufferPool pool_;
  std::vector<BlockId> free_list_;
  BlockId next_block_ = kReservedBlocks;
  std::uint64_t blocks_in_use_ = 0;
  std::vector<std::uint64_t> roots_;
  // Allocator-stream spill regions rotate like the superblock slots: the
  // committed checkpoint's region (spill_start_/spill_count_, persisted in
  // its superblock) must stay intact until the next commit supersedes it,
  // so the next checkpoint spills into the *spare* — the region from two
  // checkpoints ago — when the stream still fits it exactly, and claims
  // fresh high-water space only when the stream changed size. Both regions
  // are reserved (excluded from allocation and blocks_in_use_); the spare's
  // ids ARE persisted as free — a recovery has no rotation history, so to
  // it the spare is plain free space.
  BlockId spill_start_ = 0;
  std::uint32_t spill_count_ = 0;
  BlockId spare_spill_start_ = 0;
  std::uint32_t spare_spill_count_ = 0;
  // Scratch for spill-run transfers: hoisted so repeated checkpoints reuse
  // one allocation instead of building a fresh vector per spill run.
  std::vector<word_t> spill_scratch_;
  std::uint64_t epoch_ = 0;  // checkpoint counter; parity picks the slot

  // Write-ahead log state (EmOptions::wal_path). The live-set snapshot
  // (high-water + free set as of the last checkpoint) decides which home
  // overwrites need a pre-image: blocks beyond the checkpoint's high water
  // or on its free list are unreferenced by it, so their contents are
  // irrelevant to recovery and cost nothing.
  std::unique_ptr<WriteAheadLog> wal_;
  std::uint64_t wal_ckpt_lsn_ = 0;
  BlockId ckpt_next_block_ = kReservedBlocks;
  std::unordered_set<BlockId> ckpt_free_;
  std::unordered_set<BlockId> preimaged_;  // guarded this interval already
  std::vector<word_t> preimage_scratch_;

  // COW epoch state. Writer-thread only: map_, interval_fresh_, deferred_,
  // orphans_ (plus free_list_ above). Shared with pinning threads, guarded
  // by epochs_mu_: pins_, retire_queue_, retire_ready_.
  bool cow_ = false;
  std::unordered_map<BlockId, BlockId> map_;  // name -> location (else id.)
  std::unordered_set<BlockId> interval_fresh_;  // locations born post-publish
  std::vector<BlockId> deferred_;  // superseded this interval
  std::unordered_set<BlockId> orphans_;  // retired locations, names held
  mutable std::mutex epochs_mu_;
  std::map<std::uint64_t, std::uint64_t> pins_;  // epoch -> pin count
  std::deque<std::pair<std::uint64_t, std::vector<BlockId>>> retire_queue_;
  std::vector<BlockId> retire_ready_;
  std::atomic<bool> retire_ready_flag_{false};  // lock-free Allocate gate
  std::atomic<std::uint64_t> published_epoch_{0};
  std::atomic<std::uint64_t> retired_total_{0};
};

inline void EpochPin::Release() {
  if (pager_ != nullptr) {
    pager_->ReleaseEpochPin(epoch_);
    pager_ = nullptr;
  }
}

inline std::size_t PageRef::WordsPerBlock() const {
  TOKRA_DCHECK(pool_ != nullptr);
  return pool_->block_words();
}

}  // namespace tokra::em

#endif  // TOKRA_EM_PAGER_H_
