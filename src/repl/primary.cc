#include "repl/primary.h"

#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "em/wal.h"
#include "em/wal_tail.h"
#include "util/io_retry.h"

namespace tokra::repl {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t NowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StatusOr<std::unique_ptr<Primary>> Primary::Start(
    engine::ShardedTopkEngine* engine, Options options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("repl primary: null engine");
  }
  if (options.storage_dir.empty()) {
    return Status::InvalidArgument("repl primary: storage_dir required");
  }
  if (options.num_shards == 0) options.num_shards = engine->num_shards();
  if (options.num_shards != engine->num_shards()) {
    return Status::InvalidArgument("repl primary: num_shards mismatch");
  }
  TOKRA_ASSIGN_OR_RETURN(const int listen_fd,
                         ListenTcp(options.bind_addr, options.port));
  auto port_or = LocalPort(listen_fd);
  if (!port_or.ok()) {
    ::close(listen_fd);
    return port_or.status();
  }
  std::unique_ptr<Primary> p(
      new Primary(engine, std::move(options), listen_fd, *port_or));
  p->accept_thread_ = std::thread([raw = p.get()] { raw->AcceptLoop(); });
  return p;
}

Primary::Primary(engine::ShardedTopkEngine* engine, Options options,
                 int listen_fd, std::uint16_t port)
    : engine_(engine),
      options_(std::move(options)),
      listen_fd_(listen_fd),
      port_(port) {}

Primary::~Primary() { Stop(); }

void Primary::Stop() {
  if (stop_.exchange(true)) {
    // Second Stop: threads already asked to exit; just wait for them.
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Session> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (Session& s : sessions) {
    s.conn->Close();
    if (s.th.joinable()) s.th.join();
  }
}

Primary::Stats Primary::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string Primary::WalPath(std::uint32_t shard) const {
  return options_.storage_dir + "/shard-" + std::to_string(shard) + ".wal";
}

std::string Primary::EpochPath(std::uint32_t shard) const {
  return options_.storage_dir + "/.repl-epoch/shard-" + std::to_string(shard) +
         ".tokra";
}

std::string Primary::EpochCounterPath() const {
  return options_.storage_dir + "/.repl-epoch/EPOCH";
}

std::uint64_t Primary::LoadPersistedEpoch() const {
  FILE* f = std::fopen(EpochCounterPath().c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long long v = 0;
  const int n = std::fscanf(f, "%llu", &v);
  std::fclose(f);
  return n == 1 ? static_cast<std::uint64_t>(v) : 0;
}

void Primary::PersistEpoch(std::uint64_t epoch) const {
  // Best-effort: a lost write only risks an epoch collision after TWO
  // crashes in a row, and the follower's CRC-checked chunks bound the
  // damage to a re-bootstrap.
  FILE* f = std::fopen(EpochCounterPath().c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "%llu\n", static_cast<unsigned long long>(epoch));
  std::fclose(f);
}

void Primary::AcceptLoop() {
  while (!stop_.load()) {
    auto fd = AcceptConn(listen_fd_, /*timeout_ms=*/50);
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kNotFound) continue;
      // Listen socket dead (Stop closed it, or a real error): exit; the
      // established connections keep serving until Stop.
      return;
    }
    auto conn = std::make_shared<Conn>(
        *fd, Conn::Options{options_.io_timeout_ms, options_.fault});
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_total;
      ++stats_.active_connections;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stop_.load()) {
      conn->Close();
      std::lock_guard<std::mutex> slock(stats_mu_);
      --stats_.active_connections;
      return;
    }
    Session s;
    s.conn = conn;
    s.th = std::thread([this, conn] { Serve(conn); });
    sessions_.push_back(std::move(s));
  }
}

void Primary::Serve(std::shared_ptr<Conn> conn) {
  // The session's exit status is the connection's epitaph — followers
  // learn everything they need from the close itself.
  (void)ServeConn(*conn);
  conn->Close();
  std::lock_guard<std::mutex> lock(stats_mu_);
  --stats_.active_connections;
}

bool Primary::NeedsBootstrap(const SubscribeMsg& sub) const {
  // A follower that never completed a bootstrap has meaningless applied
  // LSNs. Once bootstrapped, an applied LSN of 0 is a legitimate position
  // (a shard with no WAL history yet) and must NOT retrigger a snapshot on
  // every reconnect.
  if (sub.bootstrapped == 0) return true;
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    auto reader = em::WalReader::Open(WalPath(s), options_.block_words);
    if (reader.ok() && (*reader)->base_lsn() > sub.applied_lsns[s] + 1) {
      // The log rotated past the follower's position: the records it
      // still needs are gone from the segment.
      return true;
    }
  }
  return false;
}

Status Primary::ShipSnapshot(Conn& conn, const SubscribeMsg& sub,
                             std::vector<std::uint64_t>* resume) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  bool need_export = (epoch_ == 0);
  if (!need_export) {
    for (std::uint32_t s = 0; s < options_.num_shards && !need_export; ++s) {
      auto reader = em::WalReader::Open(WalPath(s), options_.block_words);
      if (reader.ok() && (*reader)->base_lsn() > epoch_covered_[s] + 1) {
        need_export = true;  // epoch too old to tail from: re-export
      }
    }
  }
  if (need_export) {
    epoch_covered_.clear();
    TOKRA_RETURN_IF_ERROR(engine_->ExportSnapshot(
        options_.storage_dir + "/.repl-epoch", &epoch_covered_));
    // Epoch numbers must be unique across primary INCARNATIONS, not just
    // within one: a follower resumes a half-received snapshot mid-file by
    // epoch number, so a restarted primary reusing epoch 1 would make a
    // bootstrapped follower skip the entire fresh export as "already
    // received". The counter is persisted next to the epoch files and
    // advanced past any number a previous incarnation issued.
    epoch_ = std::max(epoch_, LoadPersistedEpoch()) + 1;
    PersistEpoch(epoch_);
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.epochs_exported;
  }

  SnapBeginMsg begin;
  begin.epoch = epoch_;
  const bool resumable = sub.snapshot_epoch == epoch_ &&
                         sub.snapshot_bytes.size() == options_.num_shards;
  std::vector<int> fds(options_.num_shards, -1);
  auto close_all = [&fds] {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  };
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    const std::string path = EpochPath(s);
    fds[s] = ::open(path.c_str(), O_RDONLY);
    if (fds[s] < 0) {
      close_all();
      return Status::IoError("repl primary: open " + path + ": " +
                             std::string(::strerror(errno)));
    }
    struct stat st = {};
    if (::fstat(fds[s], &st) < 0) {
      close_all();
      return Status::IoError("repl primary: fstat " + path);
    }
    SnapBeginMsg::File f;
    f.shard = s;
    f.file_bytes = static_cast<std::uint64_t>(st.st_size);
    f.covered_lsn = epoch_covered_[s];
    f.resume_offset =
        resumable ? std::min<std::uint64_t>(sub.snapshot_bytes[s],
                                            f.file_bytes)
                  : 0;
    begin.files.push_back(f);
  }

  Status st = conn.SendFrame(FrameType::kSnapBegin, begin.Encode());
  std::vector<std::uint8_t> buf;
  std::uint64_t sent_bytes = 0;
  std::uint64_t skipped_bytes = 0;
  for (const SnapBeginMsg::File& f : begin.files) {
    if (!st.ok()) break;
    skipped_bytes += f.resume_offset;
    for (std::uint64_t off = f.resume_offset; off < f.file_bytes;) {
      const std::uint64_t n =
          std::min<std::uint64_t>(options_.chunk_bytes, f.file_bytes - off);
      buf.resize(n);
      const int err = PreadFull(fds[f.shard], buf.data(), n,
                                static_cast<off_t>(off));
      if (err != 0) {
        st = Status::IoError("repl primary: pread epoch shard " +
                             std::to_string(f.shard));
        break;
      }
      SnapChunkMsg chunk;
      chunk.shard = f.shard;
      chunk.offset = off;
      chunk.data = buf;
      st = conn.SendFrame(FrameType::kSnapChunk, chunk.Encode());
      if (!st.ok()) break;
      off += n;
      sent_bytes += n;
    }
  }
  close_all();
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.snapshot_bytes += sent_bytes;
    stats_.snapshot_bytes_skipped += skipped_bytes;
  }
  TOKRA_RETURN_IF_ERROR(st);

  SnapEndMsg end;
  end.covered_lsns = epoch_covered_;
  TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kSnapEnd, end.Encode()));
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.snapshots_shipped;
  }
  *resume = epoch_covered_;
  return Status::Ok();
}

Status Primary::ServeConn(Conn& conn) {
  // Handshake.
  Frame f;
  TOKRA_RETURN_IF_ERROR(conn.RecvFrame(&f));
  if (f.type != FrameType::kHello) {
    return Status::IoError("repl primary: expected Hello");
  }
  HelloMsg hello;
  TOKRA_RETURN_IF_ERROR(hello.Decode(f.payload));
  if (hello.version != kProtocolVersion) {
    ErrorMsg err;
    err.message = "unsupported protocol version " +
                  std::to_string(hello.version);
    (void)conn.SendFrame(FrameType::kError, err.Encode());
    return Status::InvalidArgument(err.message);
  }
  HelloAckMsg ack;
  ack.num_shards = options_.num_shards;
  ack.block_words = options_.block_words;
  TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kHelloAck, ack.Encode()));

  TOKRA_RETURN_IF_ERROR(conn.RecvFrame(&f));
  if (f.type != FrameType::kSubscribe) {
    return Status::IoError("repl primary: expected Subscribe");
  }
  SubscribeMsg sub;
  TOKRA_RETURN_IF_ERROR(sub.Decode(f.payload));
  sub.applied_lsns.resize(options_.num_shards, 0);

  std::vector<std::uint64_t> resume = sub.applied_lsns;
  if (NeedsBootstrap(sub)) {
    TOKRA_RETURN_IF_ERROR(ShipSnapshot(conn, sub, &resume));
  }

  // Tail loop: ship every new logical record per shard, heartbeat, drain
  // acks, until the connection dies or the primary stops.
  std::vector<std::unique_ptr<em::WalTailFollower>> tails;
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    tails.push_back(std::make_unique<em::WalTailFollower>(
        em::WalTailFollower::Options{WalPath(s), options_.block_words,
                                     resume[s]}));
  }
  // The follower's lag gauge is (heartbeat position − applied), and it can
  // only ever apply LOGICAL records — so the heartbeat reports the last
  // logical LSN seen per shard, not the raw WAL head, which also counts
  // pre-image records and would leave a fully caught-up follower showing
  // permanent phantom lag.
  std::vector<std::uint64_t> last_logical = resume;
  std::int64_t last_hb = 0;
  while (!stop_.load() && !conn.closed()) {
    bool shipped_any = false;
    for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
      auto polled = tails[s]->Poll(
          [&](const em::WriteAheadLog::Record& rec,
              std::span<const em::word_t> payload) -> Status {
            if (rec.type != em::WriteAheadLog::RecordType::kLogical) {
              return Status::Ok();  // pre-images are the pager's business
            }
            last_logical[s] = std::max(last_logical[s], rec.lsn);
            TailMsg tail;
            tail.shard = s;
            tail.lsn = rec.lsn;
            tail.payload.resize(payload.size_bytes());
            if (!payload.empty()) {
              std::memcpy(tail.payload.data(), payload.data(),
                          payload.size_bytes());
            }
            return conn.SendFrame(FrameType::kTail, tail.Encode());
          });
      if (!polled.ok()) {
        if (polled.status().code() == StatusCode::kNotFound) {
          continue;  // shard log not created yet
        }
        if (polled.status().code() == StatusCode::kOutOfRange) {
          // The engine truncated past this follower's position while we
          // were tailing. Tell it to come back for a snapshot.
          ErrorMsg err;
          err.message = "resync required: " + polled.status().message();
          (void)conn.SendFrame(FrameType::kError, err.Encode());
        }
        return polled.status();
      }
      if (*polled > 0) {
        shipped_any = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.tail_records += *polled;
      }
    }

    const std::int64_t now = NowMs();
    if (now - last_hb >= options_.heartbeat_ms) {
      HeartbeatMsg hb;
      hb.now_us = NowUs();
      for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
        hb.head_lsns.push_back(last_logical[s]);
      }
      TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kHeartbeat, hb.Encode()));
      last_hb = now;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.heartbeats;
    }

    for (;;) {
      Frame in;
      Status st = conn.TryRecvFrame(&in);
      if (st.code() == StatusCode::kNotFound) break;
      TOKRA_RETURN_IF_ERROR(st);
      if (in.type == FrameType::kAck) {
        AckMsg am;
        if (am.Decode(in.payload).ok()) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.acks;
        }
      }
    }

    if (!shipped_any) {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                   [this] { return stop_.load(); });
    }
  }
  return Status::Ok();
}

}  // namespace tokra::repl
