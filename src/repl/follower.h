// Replication follower: a read-serving replica of a remote primary.
//
// The follower runs one background loop driving the state machine
// documented in DESIGN.md §13:
//
//           +--------------+   connect+handshake    +----------------+
//      +--> | kConnecting  | ---------------------> | kBootstrapping |
//      |    +--------------+   (snapshot needed)    +----------------+
//      |          |                                          |
//      |          | (tail resumable)               SnapEnd → Recover,
//      |          v                                 swap engine
//      |    +--------------+ <------------------------------+
//      |    |  kStreaming  |  apply Tail records, answer TopK locally,
//      |    +--------------+  Ack applied LSNs
//      |          |
//      |          | no frame for heartbeat_timeout_ms, or conn error
//      |          v
//      |    +--------------+  keeps SERVING (stale) reads; lag gauges
//      +--- |  kDegraded   |  grow; reconnects with capped exponential
//  backoff  +--------------+  backoff + seeded jitter
//
// Reconnection resumes from the per-shard applied LSNs: the Subscribe
// message carries them, and the primary re-ships a snapshot only for a
// follower whose position its logs no longer cover. A bootstrap
// interrupted mid-stream resumes mid-file (Subscribe also carries the
// byte offsets already received of the current snapshot epoch).
//
// Staleness semantics: a follower answers TopK from its local engine at
// whatever LSN frontier it has applied — reads are monotone per follower
// (applied LSNs never move backwards) but can lag the primary by
// tokra_repl_lag_lsn records / tokra_repl_lag_ms of heartbeat silence,
// both exported from this object's own MetricsRegistry.

#ifndef TOKRA_REPL_FOLLOWER_H_
#define TOKRA_REPL_FOLLOWER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "em/fault_device.h"
#include "engine/sharded_engine.h"
#include "obs/metrics.h"
#include "repl/conn.h"
#include "repl/protocol.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::repl {

class Follower {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Local replica directory (created if missing). Snapshot bytes land
    /// here; the serving engine recovers from it.
    std::string storage_dir;
    /// Engine template for the local replica: num_shards and em geometry
    /// must match the primary's; storage_dir and durability are overridden
    /// (kCheckpoint — the follower's redo stream IS the primary's WAL).
    /// engine.mvcc passes through: with it set, every applied tail record
    /// publishes a fresh epoch view on its shard (DESIGN.md §14), so
    /// replica reads are lock-free and advance by EPOCH SWAP — only a full
    /// re-bootstrap still replaces the whole engine shared_ptr.
    engine::EngineOptions engine;
    /// No frame (tail, snapshot chunk, or heartbeat) for this long means
    /// the primary is dead or partitioned: degrade and reconnect.
    int heartbeat_timeout_ms = 1000;
    int connect_timeout_ms = 1000;
    int io_timeout_ms = 5000;
    /// Reconnect backoff: initial delay, doubled per failure up to the
    /// cap, each sleep jittered to [delay/2, delay) by a deterministic
    /// stream from backoff_seed. Reset on the first frame of a session.
    int backoff_initial_ms = 50;
    int backoff_max_ms = 2000;
    std::uint64_t backoff_seed = 1;
    /// How often a streaming follower reports its applied LSNs upstream.
    int ack_interval_ms = 100;
    /// Consulted once per frame (see repl/conn.h); a fired fault closes
    /// the socket mid-protocol — the partition torture hook.
    em::FaultInjector* fault = nullptr;
  };

  enum class State : int {
    kConnecting = 0,
    kBootstrapping = 1,
    kStreaming = 2,
    kDegraded = 3,
  };
  static const char* StateName(State s);

  /// Point-in-time observability snapshot.
  struct Stats {
    State state = State::kConnecting;
    bool serving = false;          ///< has a bootstrapped engine
    std::uint64_t lag_lsn = 0;     ///< sum over shards of head - applied
    std::int64_t lag_ms = -1;      ///< ms since last heartbeat; -1 = never
    std::uint64_t reconnects = 0;
    std::uint64_t bootstraps = 0;  ///< full snapshot installs
    std::uint64_t tail_records = 0;
    std::uint64_t tail_ops = 0;
    std::uint64_t snapshot_bytes = 0;          ///< chunk bytes received
    std::uint64_t snapshot_resumed_bytes = 0;  ///< saved by ranged resume
    std::uint64_t heartbeats = 0;
    std::uint64_t apply_errors = 0;
    std::vector<std::uint64_t> applied_lsns;
  };

  /// Creates the storage directory and starts the replication loop. The
  /// follower begins in kConnecting and serves reads only after its first
  /// bootstrap completes.
  static StatusOr<std::unique_ptr<Follower>> Start(Options options);

  ~Follower();
  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Terminates the loop and closes the connection. The serving engine
  /// stays queryable until destruction. Idempotent.
  void Stop();

  State state() const { return state_.load(); }
  bool serving() const;

  /// Answers from the local replica engine (possibly stale — see the
  /// staleness semantics above). kFailedPrecondition before the first
  /// bootstrap completes.
  StatusOr<std::vector<Point>> TopK(double x1, double x2,
                                    std::uint64_t k) const;

  /// Order-sensitive digest of the full top-k ordering of every point in
  /// the replica — equal digests mean byte-identical serving state.
  StatusOr<std::uint64_t> Fingerprint() const;

  Stats stats() const;

  /// Prometheus-style exposition of the follower's own registry
  /// (tokra_repl_lag_lsn, tokra_repl_lag_ms, tokra_repl_state, and the
  /// lifetime counters), refreshed first.
  std::string DumpMetrics() const;

 private:
  explicit Follower(Options options);

  void Run();
  Status Session(Conn& conn);
  Status HandleSnapshot(Conn& conn, const SnapBeginMsg& begin);
  Status ApplyTail(const TailMsg& tail);
  void SetState(State s);
  void RefreshLagGauges() const;
  std::uint64_t LagLsnLocked() const;
  std::string ShardFilePath(std::uint32_t shard) const;

  Options options_;

  std::atomic<bool> stop_{false};
  std::atomic<State> state_{State::kConnecting};
  // Whether the current session got past the handshake (loop thread only);
  // gates the backoff reset.
  bool session_progressed_ = false;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::thread loop_thread_;

  // Serving engine; swapped whole on re-bootstrap. Readers copy the
  // shared_ptr under engine_mu_ and query without it.
  mutable std::mutex engine_mu_;
  std::shared_ptr<engine::ShardedTopkEngine> engine_;

  // Replication positions + counters (guarded by mu_; written by the loop
  // thread, read by stats()).
  mutable std::mutex mu_;
  std::vector<std::uint64_t> applied_;
  std::vector<std::uint64_t> head_lsns_;
  std::int64_t last_heartbeat_ms_ = -1;
  std::uint64_t snap_epoch_ = 0;
  std::vector<std::uint64_t> snap_bytes_;
  Stats counters_;  // lifetime counters (state/lag fields unused here)

  // Own registry so a follower process exposes replication health without
  // an engine-side registry.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Gauge* g_state_ = nullptr;
  obs::Gauge* g_lag_lsn_ = nullptr;
  obs::Gauge* g_lag_ms_ = nullptr;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_bootstraps_ = nullptr;
  obs::Counter* c_tail_records_ = nullptr;
  obs::Counter* c_heartbeats_ = nullptr;
};

/// Order-sensitive FNV-1a digest of a point list (x and score bit
/// patterns, in order).
std::uint64_t FingerprintPoints(std::span<const Point> points);

/// Digest of an engine's full serving state: TopK over the whole key range
/// with k = size. Two engines with equal digests serve byte-identical
/// answers to every query.
StatusOr<std::uint64_t> EngineFingerprint(
    const engine::ShardedTopkEngine& engine);

}  // namespace tokra::repl

#endif  // TOKRA_REPL_FOLLOWER_H_
