// E14: replicated serving tier — read scaling and failover catch-up.
//
// (a) Aggregate top-k read throughput across 1 → 3 follower PROCESSES, each
//     bootstrapped over TCP from one in-process primary. The serving-tier
//     claim: followers answer locally, so read capacity scales with replica
//     count while the primary pays only snapshot + tail shipping.
// (b) Failover: a primary process is SIGKILLed mid-insert-stream while a
//     follower tails it. The follower must degrade but keep answering
//     (stale, with nonzero reported lag), and once a recovered primary
//     returns on the same port, converge to a byte-identical fingerprint.
//     Catch-up lag is the wall time from the restart to convergence; every
//     insert the dead primary ACKNOWLEDGED must survive into the recovered
//     state (acknowledged_lost counts the misses — the durability claim).
//
// All child processes are forked while the parent is still single-threaded
// (fork + threads don't mix); the parent only starts its own primary after
// the last fork. Children report over pipes in line-oriented text.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "engine/sharded_engine.h"
#include "repl/follower.h"
#include "repl/primary.h"

namespace tokra::bench {
namespace {

namespace fs = std::filesystem;
using engine::EngineOptions;
using engine::ShardedTopkEngine;
using repl::EngineFingerprint;
using repl::Follower;
using repl::Primary;

constexpr std::size_t kPoints = 20000;
constexpr double kXHi = 1e6;
constexpr int kReaderThreads = 2;
constexpr int kReadWindowMs = 1200;
constexpr std::uint64_t kK = 10;
constexpr int kAckTarget = 150;  // acked inserts before the SIGKILL

std::string RootDir() {
  return "/tmp/tokra-bench-e14-" + std::to_string(::getpid());
}

EngineOptions EngOpts(const std::string& dir) {
  EngineOptions o;
  o.num_shards = 4;
  o.threads = 4;
  o.em = em::EmOptions{.block_words = 256, .pool_frames = 64};
  o.storage_dir = dir;
  o.durability = engine::Durability::kWal;
  o.telemetry.enabled = false;
  return o;
}

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Follower::Options FollowerOpts(std::uint16_t port, const std::string& dir) {
  Follower::Options fo;
  fo.port = port;
  fo.storage_dir = dir;
  fo.engine = EngOpts(dir);
  fo.heartbeat_timeout_ms = 300;
  fo.connect_timeout_ms = 1000;
  fo.backoff_initial_ms = 20;
  fo.backoff_max_ms = 200;
  fo.ack_interval_ms = 50;
  return fo;
}

/// Child body for (a): bootstrap a follower, hammer it with local top-k
/// reads for a fixed window, report "QPS <queries_per_sec>". Exits 1 on any
/// setup failure (the parent treats that as a bench bug).
[[noreturn]] void ReaderChild(std::uint16_t port, const std::string& dir,
                              int wfd) {
  auto follower = Follower::Start(FollowerOpts(port, dir));
  if (!follower.ok()) ::_exit(1);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!((*follower)->serving() &&
           (*follower)->state() == Follower::State::kStreaming)) {
    if (std::chrono::steady_clock::now() > deadline) ::_exit(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<std::uint64_t> counts(kReaderThreads, 0);
  std::vector<std::thread> threads;
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9100 + t);
      while (WallMs(t0) < kReadWindowMs) {
        double lo = rng.UniformDouble(0, kXHi * 0.99);
        if ((*follower)->TopK(lo, lo + kXHi / 100, kK).ok()) ++counts[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  ::dprintf(wfd, "QPS %.1f\n", double(total) / (WallMs(t0) / 1000.0));
  ::_exit(0);
}

/// Child body for (b), primary side: serve a replicated engine and keep
/// inserting, acknowledging each insert AFTER its durability barrier
/// ("ACK <x>"). Runs until SIGKILLed.
[[noreturn]] void PrimaryChild(const std::string& dir, int wfd) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  Rng rng(4242);
  auto built = ShardedTopkEngine::Build(RandomPoints(&rng, kPoints, kXHi),
                                        EngOpts(dir));
  if (!built.ok()) ::_exit(1);
  auto eng = std::move(*built);
  if (!eng->Checkpoint().ok()) ::_exit(1);
  Primary::Options po;
  po.storage_dir = dir;
  po.heartbeat_ms = 25;
  po.poll_ms = 2;
  auto prim = Primary::Start(eng.get(), po);
  if (!prim.ok()) ::_exit(1);
  ::dprintf(wfd, "PORT %u\n", unsigned((*prim)->port()));
  for (int i = 0;; ++i) {
    const double x = kXHi + 1 + i;  // outside the built key range: countable
    if (eng->Insert({x, 2.0 + i}).ok()) ::dprintf(wfd, "ACK %d\n", i);
    ::usleep(400);
  }
}

/// Child body for (b), follower side: a command-driven prober. Reports
/// "SERVING", then on "KILLED" waits for degradation and answers a stale
/// read ("DEGRADED lag_ms=<v> stale_reads=<ok|fail>"); on "FP <hex>" polls
/// its fingerprint until it matches and reports "CONVERGED <ms> boot=<n>".
[[noreturn]] void ProbeChild(std::uint16_t port, const std::string& dir,
                             int rfd, int wfd) {
  auto follower = Follower::Start(FollowerOpts(port, dir));
  if (!follower.ok()) ::_exit(1);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!((*follower)->serving() &&
           (*follower)->state() == Follower::State::kStreaming)) {
    if (std::chrono::steady_clock::now() > deadline) ::_exit(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::dprintf(wfd, "SERVING\n");
  FILE* in = ::fdopen(rfd, "r");
  if (in == nullptr) ::_exit(1);
  char line[128];
  while (std::fgets(line, sizeof line, in) != nullptr) {
    if (std::strncmp(line, "KILLED", 6) == 0) {
      while ((*follower)->state() != Follower::State::kDegraded) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      const Follower::Stats st = (*follower)->stats();
      auto stale = (*follower)->TopK(0, kXHi, kK);
      ::dprintf(wfd, "DEGRADED lag_ms=%lld stale_reads=%s\n",
                static_cast<long long>(st.lag_ms),
                stale.ok() && !stale->empty() ? "ok" : "fail");
    } else if (std::strncmp(line, "FP ", 3) == 0) {
      const std::uint64_t want = std::strtoull(line + 3, nullptr, 16);
      auto t0 = std::chrono::steady_clock::now();
      bool converged = false;
      while (WallMs(t0) < 30000) {
        auto fp = (*follower)->Fingerprint();
        if (fp.ok() && *fp == want) {
          converged = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ::dprintf(wfd, "CONVERGED %s %.1f boot=%llu\n",
                converged ? "yes" : "no", WallMs(t0),
                static_cast<unsigned long long>(
                    (*follower)->stats().bootstraps));
      ::_exit(converged ? 0 : 1);
    }
  }
  ::_exit(1);
}

struct Child {
  pid_t pid = -1;
  int rfd = -1;  ///< parent reads the child's reports here
  int wfd = -1;  ///< parent writes commands here (-1: none)
};

template <typename Body>
Child Fork(Body body, bool with_cmd_pipe = false) {
  int out[2] = {-1, -1};
  int cmd[2] = {-1, -1};
  TOKRA_CHECK(::pipe(out) == 0);
  if (with_cmd_pipe) TOKRA_CHECK(::pipe(cmd) == 0);
  const pid_t pid = ::fork();
  TOKRA_CHECK(pid >= 0);
  if (pid == 0) {
    ::close(out[0]);
    if (with_cmd_pipe) ::close(cmd[1]);
    body(with_cmd_pipe ? cmd[0] : -1, out[1]);  // never returns
    ::_exit(1);
  }
  ::close(out[1]);
  if (with_cmd_pipe) ::close(cmd[0]);
  return Child{pid, out[0], with_cmd_pipe ? cmd[1] : -1};
}

/// Reads one full line (blocking) from a child's report pipe.
std::string ReadLineFrom(FILE* f) {
  char line[160];
  if (std::fgets(line, sizeof line, f) == nullptr) return "";
  std::string s(line);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

}  // namespace

void Run() {
  InitJson("e14");
  const std::string root = RootDir();
  fs::remove_all(root);
  fs::create_directories(root);

  // ---------------------------------------------------------------- (a)
  // One in-process primary would mean parent threads before the follower
  // forks, so the scaling primary is ALSO a child process.
  Child prim = Fork([&](int, int wfd) { PrimaryChild(root + "/scale-p", wfd); });
  FILE* prim_out = ::fdopen(prim.rfd, "r");
  TOKRA_CHECK(prim_out != nullptr);
  std::string port_line = ReadLineFrom(prim_out);
  TOKRA_CHECK(port_line.rfind("PORT ", 0) == 0);
  const auto port =
      static_cast<std::uint16_t>(std::strtoul(port_line.c_str() + 5,
                                              nullptr, 10));

  // Scaling is a host property: follower processes only add capacity when
  // there are cores to run them, so the core count is recorded alongside.
  const long cores = ::sysconf(_SC_NPROCESSORS_ONLN);
  Header("E14a: aggregate follower read throughput (k=" + U(kK) +
             ", cores=" + std::to_string(cores) + ")",
         {"followers", "aggregate qps", "speedup vs 1"});
  double qps1 = 0;
  for (int n = 1; n <= 3; ++n) {
    std::vector<Child> readers;
    for (int i = 0; i < n; ++i) {
      const std::string dir =
          root + "/scale-f" + std::to_string(n) + "-" + std::to_string(i);
      readers.push_back(Fork(
          [&, dir](int, int wfd) { ReaderChild(port, dir, wfd); }));
    }
    double total = 0;
    for (Child& c : readers) {
      FILE* f = ::fdopen(c.rfd, "r");
      TOKRA_CHECK(f != nullptr);
      std::string line = ReadLineFrom(f);
      std::fclose(f);
      int status = 0;
      ::waitpid(c.pid, &status, 0);
      TOKRA_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
      TOKRA_CHECK(line.rfind("QPS ", 0) == 0);
      total += std::strtod(line.c_str() + 4, nullptr);
    }
    if (n == 1) qps1 = total;
    Row({U(static_cast<std::uint64_t>(n)), D(total, 1),
         D(qps1 > 0 ? total / qps1 : 0, 2)});
  }

  // ---------------------------------------------------------------- (b)
  // Fresh primary child for failover (its insert stream must start near the
  // probe follower's bootstrap, not after minutes of scaling reads).
  ::kill(prim.pid, SIGKILL);
  ::waitpid(prim.pid, nullptr, 0);
  std::fclose(prim_out);

  const std::string pdir = root + "/failover-p";
  Child fprim = Fork([&](int, int wfd) { PrimaryChild(pdir, wfd); });
  prim_out = ::fdopen(fprim.rfd, "r");
  TOKRA_CHECK(prim_out != nullptr);
  port_line = ReadLineFrom(prim_out);
  TOKRA_CHECK(port_line.rfind("PORT ", 0) == 0);
  const auto fport =
      static_cast<std::uint16_t>(std::strtoul(port_line.c_str() + 5,
                                              nullptr, 10));
  Child probe = Fork(
      [&](int rfd, int wfd) { ProbeChild(fport, root + "/failover-f", rfd, wfd); },
      /*with_cmd_pipe=*/true);
  FILE* probe_out = ::fdopen(probe.rfd, "r");
  TOKRA_CHECK(probe_out != nullptr);
  TOKRA_CHECK(ReadLineFrom(probe_out) == "SERVING");

  // Collect acknowledgements until the target, then SIGKILL mid-stream.
  std::vector<int> acked;
  while (static_cast<int>(acked.size()) < kAckTarget) {
    std::string line = ReadLineFrom(prim_out);
    TOKRA_CHECK(!line.empty());
    if (line.rfind("ACK ", 0) == 0) {
      acked.push_back(std::atoi(line.c_str() + 4));
    }
  }
  ::kill(fprim.pid, SIGKILL);
  ::waitpid(fprim.pid, nullptr, 0);
  // Acks already buffered in the pipe when the kill landed are still
  // acknowledgements — drain to EOF.
  for (std::string line = ReadLineFrom(prim_out); !line.empty();
       line = ReadLineFrom(prim_out)) {
    if (line.rfind("ACK ", 0) == 0) acked.push_back(std::atoi(line.c_str() + 4));
  }
  std::fclose(prim_out);

  ::dprintf(probe.wfd, "KILLED\n");
  const std::string degraded = ReadLineFrom(probe_out);
  TOKRA_CHECK(degraded.rfind("DEGRADED ", 0) == 0);
  const bool stale_ok = degraded.find("stale_reads=ok") != std::string::npos;

  // Recover the dead primary's state in-parent (all forks are done) and
  // take over its port. The acknowledged-durability check runs against this
  // recovered engine: every ACKed x must still be present.
  auto recovered = ShardedTopkEngine::Recover(EngOpts(pdir));
  Must(recovered.status());
  auto eng = std::move(*recovered);
  std::uint64_t lost = 0;
  for (int i : acked) {
    auto hit = eng->TopK(kXHi + 1 + i, kXHi + 1 + i, 1);
    if (!hit.ok() || hit->empty()) ++lost;
  }
  Primary::Options po;
  po.storage_dir = pdir;
  po.port = fport;
  po.heartbeat_ms = 25;
  po.poll_ms = 2;
  auto t_restart = std::chrono::steady_clock::now();
  auto prim2 = Primary::Start(eng.get(), po);
  Must(prim2.status());
  auto want = EngineFingerprint(*eng);
  Must(want.status());
  char fpcmd[64];
  std::snprintf(fpcmd, sizeof fpcmd, "FP %llx\n",
                static_cast<unsigned long long>(*want));
  TOKRA_CHECK(::write(probe.wfd, fpcmd, std::strlen(fpcmd)) > 0);
  const std::string conv = ReadLineFrom(probe_out);
  const double catchup_ms = WallMs(t_restart);
  int status = 0;
  ::waitpid(probe.pid, &status, 0);
  std::fclose(probe_out);
  ::close(probe.wfd);
  const bool converged = conv.rfind("CONVERGED yes", 0) == 0;
  TOKRA_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  Header("E14b: failover (SIGKILL mid-stream, restart on same port)",
         {"acked before kill", "stale reads while degraded", "catchup ms",
          "acknowledged lost", "converged"});
  Row({U(acked.size()), stale_ok ? "ok" : "fail", D(catchup_ms, 1), U(lost),
       converged ? "yes" : "no"});

  // Greppable one-liner for CI (and humans scanning logs).
  std::printf(
      "REPL SUMMARY: followers=3 cores=%ld failover_catchup_ms=%.1f "
      "acknowledged_lost=%llu converged_fingerprints=%s "
      "degraded_stale_reads=%s\n",
      cores, catchup_ms, static_cast<unsigned long long>(lost),
      converged ? "yes" : "no", stale_ok ? "ok" : "fail");

  fs::remove_all(root);
}

}  // namespace tokra::bench

int main() {
  ::signal(SIGPIPE, SIG_IGN);
  tokra::bench::Run();
  return 0;
}
