// E7 — Lemma 2 machinery: with phi = 16 the candidate pool Q1 u Q2 u Q3
// always contains the true top-k (validated against the oracle by the test
// suite); its volume is O(B lg n + k).

#include "bench/common.h"
#include "pilot/pilot_pst.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e7_candidates");
  std::printf("# E7: query candidate volume (Lemma 2: O(B lg n + k))\n");
  Header("n=2^16, B=128; candidates vs k",
         {"k", "|Q1|", "|Q2|", "|Q3|", "total", "phi(B lg n) + k",
          "total/(phi(B lg n) + k)"});
  em::Pager pager(em::EmOptions{.block_words = 128, .pool_frames = 64});
  Rng rng(9);
  const std::size_t n = 1u << 16;
  auto pst = pilot::PilotPst::Build(&pager, RandomPoints(&rng, n));
  for (std::uint64_t k : {1u, 64u, 1024u, 8192u, 32768u}) {
    pilot::QueryStats stats;
    pst.TopK(2e5, 8e5, k, &stats).value();
    std::uint64_t total = stats.q1_points + stats.q2_points + stats.q3_points;
    // Lemma 2's pool is phi*(lg n + k/B) pilot sets of <= 2B points plus the
    // O(B lg n) path sets: the realized constant rides on phi = 16.
    std::uint64_t bound = 16ull * 128ull * Lg(n) + k;
    Row({U(k), U(stats.q1_points), U(stats.q2_points), U(stats.q3_points),
         U(total), U(bound),
         D(static_cast<double>(total) / static_cast<double>(bound))});
  }
  std::printf("\nShape check: the last column stays bounded by a small "
              "constant across five orders of k.\n");
  return 0;
}
