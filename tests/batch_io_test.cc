// Batched-I/O pipeline tests: the SubmitReads/SubmitWrites device API,
// buffer-pool PinMany/Prefetch semantics, backend parity (Mem / File /
// Uring produce identical logical I/O counts and oracle-identical query
// results), and parallel-vs-serial engine checkpoint equivalence.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/topk_index.h"
#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/file_block_device.h"
#include "em/mmap_block_device.h"
#include "em/pager.h"
#include "em/uring_block_device.h"
#include "engine/sharded_engine.h"
#include "internal/naive.h"
#include "util/point.h"
#include "util/random.h"

namespace tokra {
namespace {

namespace fs = std::filesystem;

/// A unique temp directory for one test; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tokra-batchio-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<Point> MakePoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1e6);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

/// All file-capable backends available in this build/kernel. kUring is
/// always requestable — MakeBlockDevice falls back to the sync file device
/// when rings are unavailable — so listing it unconditionally also tests
/// the fallback path on kernels without io_uring; kMmap likewise falls back
/// to plain file reads if the kernel refuses the mapping.
std::vector<em::Backend> FileBackends() {
  return {em::Backend::kFile, em::Backend::kUring, em::Backend::kMmap};
}

// ---------------------------------------------------------------------------
// Device batch API

TEST(BatchDeviceTest, SubmitBatchRoundTripEveryBackend) {
  TempDir dir("roundtrip");
  for (em::Backend backend : {em::Backend::kMem, em::Backend::kFile,
                              em::Backend::kUring, em::Backend::kMmap}) {
    em::EmOptions opts{.block_words = 16, .pool_frames = 4};
    opts.backend = backend;
    opts.path = dir.File("rt-" + std::to_string(static_cast<int>(backend)));
    opts.io_queue_depth = 4;  // smaller than the batch: forces multiple waves
    auto dev = em::MakeBlockDevice(opts, /*truncate_file=*/true);

    // Scattered, unsorted batch of 11 distinct blocks.
    constexpr std::uint32_t kCount = 11;
    std::vector<std::vector<em::word_t>> bufs(kCount);
    std::vector<em::IoRequest> writes;
    for (std::uint32_t i = 0; i < kCount; ++i) {
      em::BlockId id = (i * 7 + 3) % 23;
      bufs[i].assign(16, 0);
      for (std::uint32_t w = 0; w < 16; ++w) bufs[i][w] = id * 100 + w;
      writes.push_back(em::IoRequest{id, bufs[i].data()});
    }
    dev->SubmitWrites(writes);
    EXPECT_EQ(dev->writes(), kCount);

    std::vector<std::vector<em::word_t>> got(kCount);
    std::vector<em::IoRequest> reads;
    for (std::uint32_t i = 0; i < kCount; ++i) {
      got[i].assign(16, ~em::word_t{0});
      reads.push_back(em::IoRequest{writes[i].id, got[i].data()});
    }
    dev->SubmitReads(reads);
    EXPECT_EQ(dev->reads(), kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(got[i], bufs[i]);

    // Empty batches are free.
    dev->SubmitReads({});
    dev->SubmitWrites({});
    EXPECT_EQ(dev->reads(), kCount);
    EXPECT_EQ(dev->writes(), kCount);
  }
}

TEST(BatchDeviceTest, BatchCountsMatchSequentialLoop) {
  TempDir dir("counts");
  for (em::Backend backend : FileBackends()) {
    em::EmOptions opts{.block_words = 16, .pool_frames = 4};
    opts.backend = backend;
    opts.path = dir.File("cnt-" + std::to_string(static_cast<int>(backend)));
    auto batch_dev = em::MakeBlockDevice(opts, true);
    opts.path += ".seq";
    auto seq_dev = em::MakeBlockDevice(opts, true);

    std::vector<std::vector<em::word_t>> bufs(8);
    std::vector<em::IoRequest> reqs;
    for (std::uint32_t i = 0; i < 8; ++i) {
      bufs[i].assign(16, i);
      reqs.push_back(em::IoRequest{i * 3, bufs[i].data()});
    }
    batch_dev->SubmitWrites(reqs);
    batch_dev->SubmitReads(reqs);
    for (const em::IoRequest& r : reqs) seq_dev->Write(r.id, r.buf);
    for (const em::IoRequest& r : reqs) seq_dev->Read(r.id, r.buf);

    // The model charges per block transferred, however it is scheduled.
    EXPECT_EQ(batch_dev->reads(), seq_dev->reads());
    EXPECT_EQ(batch_dev->writes(), seq_dev->writes());
    EXPECT_EQ(batch_dev->NumBlocks(), seq_dev->NumBlocks());
  }
}

#if defined(TOKRA_HAVE_URING)
TEST(BatchDeviceTest, UringDeviceSelectedWhenSupported) {
  if (!em::UringBlockDevice::Supported()) {
    GTEST_SKIP() << "kernel does not grant io_uring";
  }
  TempDir dir("probe");
  em::EmOptions opts{.block_words = 16, .pool_frames = 4};
  opts.backend = em::Backend::kUring;
  opts.path = dir.File("probe.blk");
  opts.io_queue_depth = 8;
  auto dev = em::MakeBlockDevice(opts, true);
  auto* uring = dynamic_cast<em::UringBlockDevice*>(dev.get());
  ASSERT_NE(uring, nullptr);
  EXPECT_GE(uring->queue_depth(), 1u);
}

TEST(BatchDeviceTest, RegisteredBuffersRoundTrip) {
  if (!em::UringBlockDevice::Supported()) {
    GTEST_SKIP() << "kernel does not grant io_uring";
  }
  TempDir dir("regbuf");
  em::EmOptions opts{.block_words = 16, .pool_frames = 8};
  opts.backend = em::Backend::kUring;
  opts.path = dir.File("regbuf.blk");
  opts.io_queue_depth = 8;
  opts.io_register_buffers = true;
  auto dev = em::MakeBlockDevice(opts, true);
  auto* uring = dynamic_cast<em::UringBlockDevice*>(dev.get());
  ASSERT_NE(uring, nullptr);

  // The pool registers its frames at construction; whether the kernel
  // accepted is advisory (memlock limits may refuse) — the round trip must
  // be byte-identical either way, mixing registered (frame) buffers and
  // unregistered (scratch) ones in the same batches.
  em::BufferPool pool(dev.get(), 8);
  std::vector<em::word_t> zeros(16, 0);
  for (em::BlockId id = 0; id < 13; ++id) dev->Write(id, zeros.data());
  std::vector<em::BlockId> ids{0, 3, 6, 9, 12};
  std::vector<std::uint32_t> frames;
  pool.PinMany(ids, &frames);  // frame buffers through the ring (reads)
  for (std::size_t i = 0; i < frames.size(); ++i) {
    pool.FrameData(frames[i])[0] = 4000 + ids[i];
    pool.Unpin(frames[i], true);
  }
  pool.FlushAll();  // frame buffers through the ring (writes)

  std::vector<em::word_t> scratch(16, 0);  // unregistered buffer
  for (em::BlockId id : ids) {
    dev->Read(id, scratch.data());
    EXPECT_EQ(scratch[0], 4000 + id);
  }
  std::printf("registered: buffers=%d file=%d\n",
              uring->buffers_registered() ? 1 : 0,
              uring->file_registered() ? 1 : 0);
}
#endif

// ---------------------------------------------------------------------------
// Buffer-pool batching

TEST(BufferPoolBatchTest, PinManyCoalescesMissesAndPinsEverything) {
  em::MemBlockDevice dev(8);
  dev.EnsureCapacity(32);
  em::BufferPool pool(&dev, 8);
  std::vector<em::BlockId> ids{4, 9, 2, 17, 9};  // one duplicate
  std::vector<std::uint32_t> frames;
  pool.PinMany(ids, &frames);
  ASSERT_EQ(frames.size(), ids.size());
  EXPECT_EQ(dev.reads(), 4u);  // duplicate served from the batch's own load
  EXPECT_EQ(pool.stats().pool_misses, 4u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(frames[1], frames[4]);  // same block, same frame, two pins
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(pool.FrameBlock(frames[i]), ids[i]);
    pool.Unpin(frames[i], false);
  }
}

TEST(BufferPoolBatchTest, PrefetchedBlocksAreByteIdenticalToColdPins) {
  TempDir dir("prefetch");
  for (em::Backend backend : FileBackends()) {
    em::EmOptions opts{.block_words = 8, .pool_frames = 8};
    opts.backend = backend;
    opts.path = dir.File("pf-" + std::to_string(static_cast<int>(backend)));
    auto dev = em::MakeBlockDevice(opts, true);
    std::vector<em::word_t> buf(8);
    for (em::BlockId id = 0; id < 6; ++id) {
      for (std::uint32_t w = 0; w < 8; ++w) buf[w] = id * 1000 + w;
      dev->Write(id, buf.data());
    }

    // Cold pins on one pool; prefetch-then-pin on a second.
    em::BufferPool cold(dev.get(), 8), warm(dev.get(), 8);
    std::vector<em::BlockId> ids{0, 1, 2, 3, 4, 5};
    warm.Prefetch(ids);
    EXPECT_EQ(warm.stats().prefetched, 6u);
    EXPECT_EQ(warm.stats().pool_misses, 0u);
    std::uint64_t dev_reads = dev->reads();
    for (em::BlockId id : ids) {
      std::uint32_t cf = cold.Pin(id, em::BufferPool::PinMode::kRead);
      std::uint32_t wf = warm.Pin(id, em::BufferPool::PinMode::kRead);
      EXPECT_EQ(std::vector<em::word_t>(cold.FrameData(cf),
                                        cold.FrameData(cf) + 8),
                std::vector<em::word_t>(warm.FrameData(wf),
                                        warm.FrameData(wf) + 8));
      cold.Unpin(cf, false);
      warm.Unpin(wf, false);
    }
    // The warm pool's pins were all hits: only the cold pool read.
    EXPECT_EQ(dev->reads(), dev_reads + 6);
    EXPECT_EQ(warm.stats().pool_hits, 6u);
  }
}

TEST(BufferPoolBatchTest, PrefetchRespectsPinsAndSkipsWhenFull) {
  em::MemBlockDevice dev(8);
  dev.EnsureCapacity(64);
  em::BufferPool pool(&dev, 4);
  // Pin three of four frames.
  std::uint32_t f0 = pool.Pin(0, em::BufferPool::PinMode::kRead);
  std::uint32_t f1 = pool.Pin(1, em::BufferPool::PinMode::kRead);
  std::uint32_t f2 = pool.Pin(2, em::BufferPool::PinMode::kRead);
  pool.FrameData(f0)[0] = 42;
  // Prefetch far more than fits: it must fill the one free frame, evict
  // nothing pinned, and silently skip the rest.
  std::vector<em::BlockId> many;
  for (em::BlockId id = 10; id < 40; ++id) many.push_back(id);
  pool.Prefetch(many);
  EXPECT_EQ(pool.stats().prefetched, 1u);
  EXPECT_EQ(pool.FrameBlock(f0), 0u);
  EXPECT_EQ(pool.FrameData(f0)[0], 42u);
  // A prefetch that fits no frame at all is a no-op, not an error.
  std::uint32_t f3 = pool.Pin(3, em::BufferPool::PinMode::kRead);
  pool.Prefetch(many);
  EXPECT_EQ(pool.stats().prefetched, 1u);
  for (std::uint32_t f : {f0, f1, f2, f3}) pool.Unpin(f, false);
}

TEST(BufferPoolBatchTest, BatchEvictionWritesBackDirtyVictims) {
  em::MemBlockDevice dev(8);
  dev.EnsureCapacity(64);
  em::BufferPool pool(&dev, 4);
  // Dirty all four frames.
  for (em::BlockId id = 0; id < 4; ++id) {
    std::uint32_t f = pool.Pin(id, em::BufferPool::PinMode::kRead);
    pool.FrameData(f)[0] = 7 + id;
    pool.Unpin(f, true);
  }
  // A 4-block PinMany evicts all four dirty frames as one write batch.
  std::vector<em::BlockId> ids{10, 11, 12, 13};
  std::vector<std::uint32_t> frames;
  pool.PinMany(ids, &frames);
  EXPECT_EQ(dev.writes(), 4u);
  EXPECT_EQ(pool.stats().evictions, 4u);
  for (std::uint32_t f : frames) pool.Unpin(f, false);
  // The written-back contents are intact.
  for (em::BlockId id = 0; id < 4; ++id) {
    std::uint32_t f = pool.Pin(id, em::BufferPool::PinMode::kRead);
    EXPECT_EQ(pool.FrameData(f)[0], 7 + id);
    pool.Unpin(f, false);
  }
}

// ---------------------------------------------------------------------------
// Mmap device + borrowed pins

TEST(MmapDeviceTest, BorrowedReadsSeeWritesAndCountIos) {
  TempDir dir("mmap-dev");
  em::EmOptions opts{.block_words = 16, .pool_frames = 4};
  opts.backend = em::Backend::kMmap;
  opts.path = dir.File("dev.blk");
  auto dev = em::MakeBlockDevice(opts, /*truncate_file=*/true);
  if (!dev->SupportsBorrowedReads()) {
    GTEST_SKIP() << "kernel refused the mapping";
  }

  std::vector<em::word_t> buf(16);
  for (std::uint32_t w = 0; w < 16; ++w) buf[w] = 100 + w;
  dev->Write(3, buf.data());

  // A borrow is one logical read and observes the written bytes in place.
  std::uint64_t reads = dev->reads();
  const em::word_t* p = dev->TryBorrowRead(3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(dev->reads(), reads + 1);
  for (std::uint32_t w = 0; w < 16; ++w) EXPECT_EQ(p[w], 100 + w);

  // The pointer is a live view of the page cache: a later write to the
  // same block shows through it (pwrite and MAP_SHARED are coherent), and
  // it stays valid across device growth (no remap ever happens).
  for (std::uint32_t w = 0; w < 16; ++w) buf[w] = 900 + w;
  dev->Write(3, buf.data());
  dev->EnsureCapacity(4096);
  for (std::uint32_t w = 0; w < 16; ++w) EXPECT_EQ(p[w], 900 + w);
}

TEST(MmapDeviceTest, ReadOnlyDeviceServesExistingFile) {
  TempDir dir("mmap-ro");
  em::EmOptions opts{.block_words = 16, .pool_frames = 4};
  opts.backend = em::Backend::kFile;
  opts.path = dir.File("ro.blk");
  std::vector<em::word_t> buf(16, 7);
  {
    auto writer = em::MakeBlockDevice(opts, true);
    writer->Write(0, buf.data());
    writer->Write(5, buf.data());
    writer->Sync();
  }
  opts.backend = em::Backend::kMmap;
  opts.read_only = true;
  auto ro = em::MakeBlockDevice(opts, /*truncate_file=*/false);
  EXPECT_EQ(ro->NumBlocks(), 6u);
  std::vector<em::word_t> got(16, 0);
  ro->Read(5, got.data());
  EXPECT_EQ(got, buf);
  if (ro->SupportsBorrowedReads()) {
    const em::word_t* p = ro->TryBorrowRead(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p[0], 7u);
  }
}

TEST(BorrowedPinTest, ReadPinsBorrowAndWritePinsCopyOnWrite) {
  TempDir dir("borrow");
  em::EmOptions opts{.block_words = 8, .pool_frames = 4};
  opts.backend = em::Backend::kMmap;
  opts.path = dir.File("borrow.blk");
  auto dev = em::MakeBlockDevice(opts, true);
  if (!dev->SupportsBorrowedReads()) {
    GTEST_SKIP() << "kernel refused the mapping";
  }
  std::vector<em::word_t> buf(8);
  for (em::BlockId id = 0; id < 8; ++id) {
    for (std::uint32_t w = 0; w < 8; ++w) buf[w] = id * 10 + w;
    dev->Write(id, buf.data());
  }

  em::BufferPool pool(dev.get(), 4);
  // Read pin: the frame borrows (no copy into the frame buffer), and the
  // read-only view serves the mapping's bytes.
  std::uint32_t f = pool.Pin(2, em::BufferPool::PinMode::kRead);
  EXPECT_TRUE(pool.FrameBorrowed(f));
  EXPECT_EQ(pool.stats().borrows, 1u);
  EXPECT_EQ(pool.ReadData(f)[3], 23u);

  // First mutable access upgrades copy-on-write: borrowed -> owned, bytes
  // preserved, mapping untouched by the mutation until write-back.
  em::word_t* mut = pool.FrameData(f);
  EXPECT_FALSE(pool.FrameBorrowed(f));
  EXPECT_EQ(mut[3], 23u);
  mut[3] = 777;
  pool.Unpin(f, /*dirty=*/true);
  EXPECT_EQ(dev->TryBorrowRead(2)[3], 23u);  // not yet written back
  pool.FlushAll();
  EXPECT_EQ(dev->TryBorrowRead(2)[3], 777u);  // write-back reached the file

  // Re-pinning after the flush borrows again and sees the new bytes.
  std::uint32_t f2 = pool.Pin(2, em::BufferPool::PinMode::kRead);
  EXPECT_EQ(pool.ReadData(f2)[3], 777u);
  pool.Unpin(f2, false);
}

TEST(BorrowedPinTest, EvictionNeverWritesBorrowedFrames) {
  TempDir dir("borrow-evict");
  em::EmOptions opts{.block_words = 8, .pool_frames = 4};
  opts.backend = em::Backend::kMmap;
  opts.path = dir.File("evict.blk");
  auto dev = em::MakeBlockDevice(opts, true);
  if (!dev->SupportsBorrowedReads()) {
    GTEST_SKIP() << "kernel refused the mapping";
  }
  std::vector<em::word_t> buf(8, 1);
  for (em::BlockId id = 0; id < 16; ++id) dev->Write(id, buf.data());
  const std::uint64_t writes_before = dev->writes();

  em::BufferPool pool(dev.get(), 4);
  // Cycle far more blocks than frames through read pins: every miss
  // borrows, every eviction drops a borrowed frame, and none of it may
  // write a single block.
  for (int round = 0; round < 4; ++round) {
    for (em::BlockId id = 0; id < 16; ++id) {
      std::uint32_t f = pool.Pin(id, em::BufferPool::PinMode::kRead);
      EXPECT_TRUE(pool.FrameBorrowed(f));
      pool.Unpin(f, false);
    }
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_EQ(dev->writes(), writes_before);
  pool.DropAll();
  EXPECT_EQ(dev->writes(), writes_before);
}

TEST(BorrowedPinTest, PinManyAndPrefetchBorrow) {
  TempDir dir("borrow-batch");
  em::EmOptions opts{.block_words = 8, .pool_frames = 8};
  opts.backend = em::Backend::kMmap;
  opts.path = dir.File("batch.blk");
  auto dev = em::MakeBlockDevice(opts, true);
  if (!dev->SupportsBorrowedReads()) {
    GTEST_SKIP() << "kernel refused the mapping";
  }
  std::vector<em::word_t> buf(8);
  for (em::BlockId id = 0; id < 8; ++id) {
    for (std::uint32_t w = 0; w < 8; ++w) buf[w] = id * 10 + w;
    dev->Write(id, buf.data());
  }

  em::BufferPool pool(dev.get(), 8);
  pool.Prefetch(std::vector<em::BlockId>{0, 1, 2});
  EXPECT_EQ(pool.stats().prefetched, 3u);
  EXPECT_EQ(pool.stats().borrows, 3u);

  std::vector<std::uint32_t> frames;
  pool.PinMany(std::vector<em::BlockId>{2, 4, 5}, &frames);
  EXPECT_EQ(pool.stats().pool_hits, 1u);    // 2 was prefetched
  EXPECT_EQ(pool.stats().pool_misses, 2u);  // 4, 5 borrow on miss
  EXPECT_EQ(pool.stats().borrows, 5u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(pool.FrameBorrowed(frames[i]));
    pool.Unpin(frames[i], false);
  }
  EXPECT_EQ(pool.ReadData(frames[1])[2], 42u);
}

// ---------------------------------------------------------------------------
// Backend parity on the full structure

TEST(BackendParityTest, IdenticalIoCountsAndOracleResults) {
  TempDir dir("parity");
  constexpr std::size_t kN = 4096;
  constexpr int kQueries = 200;
  Rng rng(77);
  auto points = MakePoints(&rng, kN);

  struct RunOut {
    em::IoStats build, query;
    std::vector<std::vector<Point>> results;
  };
  auto run = [&](em::Backend backend, const std::string& path,
                 std::uint32_t qd, bool reg = false) {
    em::EmOptions opts{.block_words = 64, .pool_frames = 16};
    opts.backend = backend;
    opts.path = path;
    opts.io_queue_depth = qd;
    opts.io_register_buffers = reg;
    em::Pager pager(opts);
    RunOut out;
    auto built = core::TopkIndex::Build(&pager, points);
    TOKRA_CHECK(built.ok());
    pager.FlushAll();
    out.build = pager.stats();
    Rng qrng(78);
    em::IoStats before = pager.stats();
    for (int i = 0; i < kQueries; ++i) {
      pager.DropCache();  // cold: every touched block is a real transfer
      double a = qrng.UniformDouble(0.0, 1e6);
      double b = qrng.UniformDouble(0.0, 1e6);
      std::uint64_t k = 1 + qrng.Uniform(200);
      auto r = (*built)->TopK(std::min(a, b), std::max(a, b), k);
      TOKRA_CHECK(r.ok());
      out.results.push_back(std::move(*r));
    }
    out.query = pager.stats() - before;
    return out;
  };

  RunOut mem = run(em::Backend::kMem, "", 1);
  RunOut file = run(em::Backend::kFile, dir.File("parity-file.blk"), 1);
  RunOut uring8 = run(em::Backend::kUring, dir.File("parity-u8.blk"), 8);
  RunOut uring32 = run(em::Backend::kUring, dir.File("parity-u32.blk"), 32);
  RunOut uring_reg =
      run(em::Backend::kUring, dir.File("parity-ureg.blk"), 8, /*reg=*/true);
  RunOut mmap = run(em::Backend::kMmap, dir.File("parity-mmap.blk"), 1);

  // Logical I/O counts are a property of the access sequence, not the
  // backend, the queue depth, kernel-side buffer registration, or whether
  // reads were copied or borrowed.
  for (const RunOut* other : {&file, &uring8, &uring32, &uring_reg, &mmap}) {
    EXPECT_EQ(mem.build.reads, other->build.reads);
    EXPECT_EQ(mem.build.writes, other->build.writes);
    EXPECT_EQ(mem.query.reads, other->query.reads);
    EXPECT_EQ(mem.query.writes, other->query.writes);
    EXPECT_EQ(mem.query.pool_hits, other->query.pool_hits);
    EXPECT_EQ(mem.query.pool_misses, other->query.pool_misses);
    EXPECT_EQ(mem.query.prefetched, other->query.prefetched);
    ASSERT_EQ(mem.results.size(), other->results.size());
    for (std::size_t i = 0; i < mem.results.size(); ++i) {
      EXPECT_EQ(mem.results[i], other->results[i]) << "query " << i;
    }
  }

  // And the shared answers are right: check against the oracle.
  Rng qrng(78);
  for (int i = 0; i < kQueries; ++i) {
    double a = qrng.UniformDouble(0.0, 1e6);
    double b = qrng.UniformDouble(0.0, 1e6);
    std::uint64_t k = 1 + qrng.Uniform(200);
    auto expect =
        internal::NaiveTopK(points, std::min(a, b), std::max(a, b), k);
    EXPECT_EQ(mem.results[i], expect) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Parallel checkpoints

engine::EngineOptions BaseEngineOptions(const std::string& dir) {
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 4;
  opts.em.block_words = 64;
  opts.em.pool_frames = 16;
  opts.storage_dir = dir;
  return opts;
}

TEST(ParallelCheckpointTest, MatchesSerialAndRecovers) {
  TempDir par_dir("ckpt-par"), ser_dir("ckpt-ser");
  Rng rng(91);
  auto points = MakePoints(&rng, 2048);
  auto extra = MakePoints(&rng, 256);

  auto run = [&](const std::string& dir, bool parallel) {
    engine::EngineOptions opts = BaseEngineOptions(dir);
    opts.parallel_checkpoint = parallel;
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    TOKRA_CHECK(built.ok());
    // Mutate after build so the checkpoint has real dirty state to flush.
    for (const Point& p : extra) TOKRA_CHECK((*built)->Insert(p).ok());
    for (std::size_t i = 0; i < points.size(); i += 5) {
      TOKRA_CHECK((*built)->Delete(points[i]).ok());
    }
    TOKRA_CHECK((*built)->Checkpoint().ok());
    auto recovered = engine::ShardedTopkEngine::Recover(opts);
    TOKRA_CHECK(recovered.ok());
    (*recovered)->CheckInvariants();
    return std::move(*recovered);
  };
  auto par = run(par_dir.path(), /*parallel=*/true);
  auto ser = run(ser_dir.path(), /*parallel=*/false);

  EXPECT_EQ(par->size(), ser->size());
  Rng qrng(92);
  for (int i = 0; i < 100; ++i) {
    double a = qrng.UniformDouble(0.0, 1e6);
    double b = qrng.UniformDouble(0.0, 1e6);
    std::uint64_t k = 1 + qrng.Uniform(64);
    auto rp = par->TopK(std::min(a, b), std::max(a, b), k);
    auto rs = ser->TopK(std::min(a, b), std::max(a, b), k);
    ASSERT_TRUE(rp.ok() && rs.ok());
    EXPECT_EQ(*rp, *rs) << "query " << i;
  }
}

TEST(ParallelCheckpointTest, CleanShardsAreSkippedAndStayRecoverable) {
  TempDir dir("ckpt-clean");
  Rng rng(95);
  auto points = MakePoints(&rng, 2048);
  engine::EngineOptions opts = BaseEngineOptions(dir.path());
  auto built = engine::ShardedTopkEngine::Build(points, opts);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Checkpoint().ok());

  // Nothing changed: a second checkpoint must skip every shard — zero
  // block writes (the files already hold exactly this state).
  em::IoStats before = (*built)->AggregatedIoStats();
  ASSERT_TRUE((*built)->Checkpoint().ok());
  EXPECT_EQ(((*built)->AggregatedIoStats() - before).writes, 0u);

  // Dirty exactly one shard; the next checkpoint writes only that shard
  // (strictly fewer blocks than the full first checkpoint flushed).
  auto one = MakePoints(&rng, 1);
  ASSERT_TRUE((*built)->Insert(one[0]).ok());
  before = (*built)->AggregatedIoStats();
  ASSERT_TRUE((*built)->Checkpoint().ok());
  const std::uint64_t dirty_writes =
      ((*built)->AggregatedIoStats() - before).writes;
  EXPECT_GT(dirty_writes, 0u);

  // Skipped checkpoints must not cost recoverability.
  std::uint64_t final_size = (*built)->size();
  built->reset();
  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->size(), final_size);
  (*recovered)->CheckInvariants();
}

TEST(ParallelCheckpointTest, RepeatedCheckpointsStayRecoverable) {
  TempDir dir("ckpt-repeat");
  Rng rng(93);
  auto points = MakePoints(&rng, 1024);
  engine::EngineOptions opts = BaseEngineOptions(dir.path());
  opts.em.backend = em::Backend::kUring;  // uring shards + parallel ckpt
  auto built = engine::ShardedTopkEngine::Build(points, opts);
  ASSERT_TRUE(built.ok());
  auto more = MakePoints(&rng, 512);
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = round * 128; i < (round + 1) * 128; ++i) {
      ASSERT_TRUE((*built)->Insert(more[i]).ok());
    }
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }
  std::uint64_t final_size = (*built)->size();
  built->reset();  // close all shard files before reopening

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->size(), final_size);
  (*recovered)->CheckInvariants();
}

}  // namespace
}  // namespace tokra
