#include "core/topk_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/bits.h"
#include "util/check.h"

namespace tokra::core {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Meta block layout. Words 4-7 persist the full build-time Options so an
// Open()ed index carries the exact configuration it was built with (the
// superblock floor guarantees >= em::kSuperblockHeaderWords = 14 words).
constexpr em::word_t kMetaMagic = 0x544F4B52544F504BULL;  // "TOKRTOPK"
constexpr std::size_t kWMagic = 0;
constexpr std::size_t kWUseLemma4 = 1;
constexpr std::size_t kWPilotMeta = 2;
constexpr std::size_t kWSelectorMeta = 3;
constexpr std::size_t kWSelectorOption = 4;  // configured Options::Selector
constexpr std::size_t kWLemma4Fanout = 5;
constexpr std::size_t kWLemma4L = 6;
constexpr std::size_t kWLemma4LeafCap = 7;
}  // namespace

StatusOr<std::unique_ptr<TopkIndex>> TopkIndex::Build(
    em::Pager* pager, std::vector<Point> points, Options options) {
  // Enforce the distinctness assumption up front.
  {
    std::set<double> xs, ss;
    for (const Point& p : points) {
      if (!xs.insert(p.x).second) {
        return Status::InvalidArgument("duplicate x coordinate");
      }
      if (!ss.insert(p.score).second) {
        return Status::InvalidArgument("duplicate score");
      }
    }
  }
  auto idx = std::unique_ptr<TopkIndex>(new TopkIndex(pager, options));

  // Section 1.2 regime rule: the ST12 component already achieves
  // logarithmic updates when lg n <= B^(1/6); otherwise (B < lg^6 n) the
  // Lemma 4 structure takes over for the small-k thresholds.
  std::uint64_t n = std::max<std::uint64_t>(points.size(), 2);
  double b16 = std::pow(static_cast<double>(pager->B()), 1.0 / 6.0);
  switch (options.selector) {
    case Options::Selector::kSt12:
      idx->use_lemma4_ = false;
      break;
    case Options::Selector::kLemma4:
      idx->use_lemma4_ = true;
      break;
    case Options::Selector::kAuto:
      idx->use_lemma4_ = static_cast<double>(Lg(n)) > b16;
      break;
  }

  idx->pilot_ = std::make_unique<pilot::PilotPst>(
      pilot::PilotPst::Build(pager, points));
  if (idx->use_lemma4_) {
    idx->lemma4_ = std::make_unique<lemma4::Lemma4Selector>(
        lemma4::Lemma4Selector::Build(pager, points,
                                      options.lemma4_params));
  } else {
    idx->st12_ = std::make_unique<st12::ShengTaoSelector>(
        st12::ShengTaoSelector::Build(pager, points));
  }
  idx->meta_ = pager->Allocate();
  idx->WriteMeta();
  return idx;
}

void TopkIndex::WriteMeta() {
  em::PageRef mp = pager_->Create(meta_);
  mp.Set(kWMagic, kMetaMagic);
  mp.Set(kWUseLemma4, use_lemma4_ ? 1 : 0);
  mp.Set(kWPilotMeta, pilot_->meta_block());
  mp.Set(kWSelectorMeta,
         use_lemma4_ ? lemma4_->meta_block() : st12_->meta_block());
  mp.Set(kWSelectorOption, static_cast<em::word_t>(options_.selector));
  mp.Set(kWLemma4Fanout, options_.lemma4_params.fanout);
  mp.Set(kWLemma4L, options_.lemma4_params.l);
  mp.Set(kWLemma4LeafCap, options_.lemma4_params.leaf_cap);
}

Status TopkIndex::Checkpoint(std::span<const std::uint64_t> extra_roots) {
  // Component meta-block ids are stable across updates and rebuilds, but
  // rewrite ours anyway: it is one pool write and guards against drift.
  WriteMeta();
  std::vector<std::uint64_t> roots;
  roots.reserve(1 + extra_roots.size());
  roots.push_back(meta_);
  roots.insert(roots.end(), extra_roots.begin(), extra_roots.end());
  return pager_->Checkpoint(roots);
}

StatusOr<std::unique_ptr<TopkIndex>> TopkIndex::Open(em::Pager* pager) {
  if (pager->roots().empty()) {
    return Status::FailedPrecondition("pager has no checkpoint roots");
  }
  em::BlockId meta = pager->roots()[0];
  Options options;
  auto idx = std::unique_ptr<TopkIndex>(new TopkIndex(pager, options));
  idx->meta_ = meta;
  em::BlockId pilot_meta, selector_meta;
  {
    em::PageRef mp = pager->Fetch(meta);
    if (mp.Get(kWMagic) != kMetaMagic) {
      return Status::FailedPrecondition("bad TopkIndex meta block");
    }
    idx->use_lemma4_ = mp.Get(kWUseLemma4) != 0;
    pilot_meta = mp.Get(kWPilotMeta);
    selector_meta = mp.Get(kWSelectorMeta);
    // Restore the full build-time Options, not just the selector decision:
    // a future query-time Options consumer must see the same configuration
    // before and after recovery.
    const em::word_t sel = mp.Get(kWSelectorOption);
    if (sel > static_cast<em::word_t>(Options::Selector::kLemma4)) {
      return Status::FailedPrecondition("bad selector option in meta block");
    }
    idx->options_.selector = static_cast<Options::Selector>(sel);
    idx->options_.lemma4_params.fanout =
        static_cast<std::uint32_t>(mp.Get(kWLemma4Fanout));
    idx->options_.lemma4_params.l =
        static_cast<std::uint32_t>(mp.Get(kWLemma4L));
    idx->options_.lemma4_params.leaf_cap =
        static_cast<std::uint32_t>(mp.Get(kWLemma4LeafCap));
  }
  idx->pilot_ = std::make_unique<pilot::PilotPst>(
      pilot::PilotPst::Open(pager, pilot_meta));
  if (idx->use_lemma4_) {
    idx->lemma4_ = std::make_unique<lemma4::Lemma4Selector>(
        lemma4::Lemma4Selector::Open(pager, selector_meta));
  } else {
    idx->st12_ = std::make_unique<st12::ShengTaoSelector>(
        st12::ShengTaoSelector::Open(pager, selector_meta));
  }
  return idx;
}

std::uint64_t TopkIndex::PilotCutoff() const {
  std::uint64_t n = std::max<std::uint64_t>(pilot_->size(), 2);
  std::uint64_t cutoff =
      static_cast<std::uint64_t>(pager_->B()) * Lg(n);
  if (use_lemma4_) {
    // Lemma 4 supports thresholds only up to its l parameter.
    cutoff = std::min<std::uint64_t>(cutoff, lemma4_->l());
  }
  return cutoff;
}

Status TopkIndex::Insert(const Point& p) {
  TOKRA_RETURN_IF_ERROR(pilot_->Insert(p));
  if (use_lemma4_) return lemma4_->Insert(p);
  return st12_->Insert(p);
}

Status TopkIndex::Delete(const Point& p) {
  TOKRA_RETURN_IF_ERROR(pilot_->Delete(p));
  if (use_lemma4_) return lemma4_->Delete(p);
  return st12_->Delete(p);
}

StatusOr<std::vector<Point>> TopkIndex::TopK(double x1, double x2,
                                             std::uint64_t k,
                                             TopkQueryStats* stats) const {
  if (x1 > x2) return Status::InvalidArgument("x1 > x2");
  if (k == 0) return std::vector<Point>{};

  // Large k: the pilot PST answers directly at O(k/B).
  if (k >= PilotCutoff()) {
    if (stats != nullptr) stats->path = QueryPath::kPilotDirect;
    return pilot_->TopK(x1, x2, k);
  }
  if (stats != nullptr) {
    stats->path = use_lemma4_ ? QueryPath::kLemma4Threshold
                              : QueryPath::kSt12Threshold;
  }

  // Approximate range k-selection -> threshold -> 3-sided report -> select.
  // The retry loop covers the case where the approximate threshold
  // under-delivers; each retry doubles the requested rank, capped by the
  // large-k path. Starting the ask below k exploits the selectors' one-sided
  // slack (returned rank >= ask): the loop converges geometrically onto a
  // tight threshold, keeping the reported candidate volume O(k) even when
  // the selector's approximation constant is large.
  std::uint64_t ask = std::max<std::uint64_t>(1, k / 4);
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    StatusOr<double> thr =
        use_lemma4_ && ask <= lemma4_->l()
            ? lemma4_->SelectApprox(x1, x2, ask)
            : !use_lemma4_
                  ? st12_->SelectApprox(x1, x2, ask)
                  : StatusOr<double>(Status::OutOfRange("beyond l"));
    double y;
    if (!thr.ok()) {
      if (thr.status().code() == StatusCode::kOutOfRange) {
        // k exceeds the range population (or the selector's l): everything
        // in range qualifies.
        y = -kInf;
      } else {
        return thr.status();
      }
    } else {
      y = *thr;
    }
    std::vector<Point> cand;
    TOKRA_RETURN_IF_ERROR(pilot_->Report3Sided(x1, x2, y, &cand));
    if (stats != nullptr) {
      stats->reported_candidates = cand.size();
      stats->threshold_retries = attempt;
    }
    if (cand.size() >= k || y == -kInf) {
      std::size_t take = std::min<std::size_t>(k, cand.size());
      std::nth_element(cand.begin(), cand.begin() + take, cand.end(),
                       ByScoreDesc{});
      cand.resize(take);
      std::sort(cand.begin(), cand.end(), ByScoreDesc{});
      return cand;
    }
    ask *= 2;
    if (ask >= PilotCutoff()) {
      if (stats != nullptr) stats->path = QueryPath::kPilotDirect;
      return pilot_->TopK(x1, x2, k);
    }
  }
  return Status::Internal("threshold retries exhausted");
}

void TopkIndex::DestroyAll() {
  pilot_->DestroyAll();
  if (use_lemma4_) {
    lemma4_->DestroyAll();
  } else {
    st12_->DestroyAll();
  }
  if (meta_ != em::kNullBlock) {
    pager_->Free(meta_);
    meta_ = em::kNullBlock;
  }
}

void TopkIndex::CheckInvariants() const {
  pilot_->CheckInvariants();
  if (use_lemma4_) {
    lemma4_->CheckInvariants();
    TOKRA_CHECK_EQ(lemma4_->size(), pilot_->size());
  } else {
    st12_->CheckInvariants();
    TOKRA_CHECK_EQ(st12_->size(), pilot_->size());
  }
}

}  // namespace tokra::core
